"""Deterministic fault schedules.

A :class:`FaultPlan` is a sorted list of faults to inject at known
simulation times.  Plans are data, not behavior: the same plan applied
to the same workload with the same seed produces a byte-identical event
trace, which is what makes failures debuggable in this repo the same
way monotasks make performance debuggable in the paper.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Union

from repro.errors import PlanError
from repro.simulator.rng import RngStreams

__all__ = ["MachineCrash", "DiskFault", "TransientSlowdown",
           "NetworkDegradation", "LinkPartition", "StorageNodeCrash",
           "BlockCorruption", "DriverCrash", "DriverPartition",
           "FaultPlan", "random_plan", "fail_slow_plan"]


@dataclass(frozen=True)
class MachineCrash:
    """Machine loses everything volatile at time ``at``; optionally
    restarts ``restart_after`` seconds later (empty, like a reimage)."""

    at: float
    machine_id: int
    restart_after: Optional[float] = None


@dataclass(frozen=True)
class DiskFault:
    """One disk fails permanently: outstanding requests error and data
    stored on it (shuffle output, DFS blocks) is lost."""

    at: float
    machine_id: int
    disk_index: int


@dataclass(frozen=True)
class TransientSlowdown:
    """Machine degrades for ``duration`` seconds, then recovers.

    ``cpu_factor`` multiplies compute times; ``disk_factor`` divides
    disk bandwidth (both > 1 mean slower), modeling contention from a
    co-located tenant or a failing-but-not-dead disk.
    """

    at: float
    machine_id: int
    duration: float
    cpu_factor: float = 1.0
    disk_factor: float = 1.0


@dataclass(frozen=True)
class NetworkDegradation:
    """A machine's NIC runs slow: a gray failure, not a crash.

    ``up_factor`` and ``down_factor`` divide the uplink and downlink
    bandwidth (both > 1 mean slower, matching
    :class:`TransientSlowdown`).  ``duration`` is how long the
    degradation lasts; ``None`` means it never self-heals -- the
    interesting case for health monitoring, since only exclusion gets
    the machine out of the critical path.
    """

    at: float
    machine_id: int
    up_factor: float = 1.0
    down_factor: float = 1.0
    duration: Optional[float] = None


@dataclass(frozen=True)
class LinkPartition:
    """The directed path ``src -> dst`` is blocked.

    In-flight flows on the path fail fast and new transfers are refused
    until the partition heals ``heal_after`` seconds later (``None``
    means it never heals and recovery must come from re-dispatch or
    lineage re-execution).
    """

    at: float
    src_machine_id: int
    dst_machine_id: int
    heal_after: Optional[float] = None


@dataclass(frozen=True)
class StorageNodeCrash:
    """A data-service storage node crashes at ``at``: its write-behind
    window (memory) is lost, disk replicas survive, and reads fail over
    to other replicas -- lineage-free recovery.  ``node_index`` is the
    storage node's index within the service (not a fabric machine id);
    optionally restarts ``restart_after`` seconds later."""

    at: float
    node_index: int
    restart_after: Optional[float] = None


@dataclass(frozen=True)
class BlockCorruption:
    """One replica held on storage node ``node_index`` is silently
    corrupted (its stored checksum no longer matches the block's).  The
    corruption surfaces at the next read as a verifiable integrity
    fault.  ``block_seq`` selects which of the node's blocks (sorted by
    block id) is hit, for deterministic plans."""

    at: float
    node_index: int
    block_seq: int = 0


@dataclass(frozen=True)
class DriverCrash:
    """A control-plane driver replica fail-stops at ``at``: its queued
    requests and in-memory tenant state vanish, heartbeats stop, and
    the leader must fail its tenants over to a surviving replica.
    ``driver_id`` indexes the replica within the
    :class:`~repro.controlplane.ControlPlane`; optionally restarts
    (empty, like a reimage) ``restart_after`` seconds later."""

    at: float
    driver_id: int
    restart_after: Optional[float] = None


@dataclass(frozen=True)
class DriverPartition:
    """A driver replica is cut off from its peers at ``at``: it keeps
    running -- the split-brain case -- but can neither send nor receive
    heartbeats, so the survivors declare it dead and fail over while it
    quiesces on lease loss.  Optionally heals ``heal_after`` seconds
    later (``None`` means the partition is permanent)."""

    at: float
    driver_id: int
    heal_after: Optional[float] = None


Fault = Union[MachineCrash, DiskFault, TransientSlowdown,
              NetworkDegradation, LinkPartition, StorageNodeCrash,
              BlockCorruption, DriverCrash, DriverPartition]

_KIND_ORDER = {MachineCrash: 0, DiskFault: 1, TransientSlowdown: 2,
               NetworkDegradation: 3, LinkPartition: 4,
               StorageNodeCrash: 5, BlockCorruption: 6,
               DriverCrash: 7, DriverPartition: 8}


def _sort_ids(fault: Fault) -> tuple:
    if isinstance(fault, LinkPartition):
        return (fault.src_machine_id, fault.dst_machine_id)
    if isinstance(fault, (StorageNodeCrash, BlockCorruption)):
        return (fault.node_index, -1)
    if isinstance(fault, (DriverCrash, DriverPartition)):
        return (fault.driver_id, -1)
    return (fault.machine_id, -1)


class FaultPlan:
    """A validated, time-sorted schedule of faults."""

    def __init__(self, faults: Sequence[Fault] = ()) -> None:
        for fault in faults:
            self._validate(fault)
        self.faults: List[Fault] = sorted(
            faults,
            key=lambda f: (f.at, _KIND_ORDER[type(f)]) + _sort_ids(f))

    @staticmethod
    def _validate(fault: Fault) -> None:
        if not (fault.at >= 0) or fault.at == float("inf"):
            raise PlanError(f"fault time must be finite and >= 0: {fault!r}")
        if isinstance(fault, (StorageNodeCrash, BlockCorruption)):
            if fault.node_index < 0:
                raise PlanError(f"node_index must be >= 0: {fault!r}")
            if isinstance(fault, StorageNodeCrash) and \
                    fault.restart_after is not None and \
                    not (fault.restart_after > 0):
                raise PlanError(f"restart_after must be > 0: {fault!r}")
            if isinstance(fault, BlockCorruption) and fault.block_seq < 0:
                raise PlanError(f"block_seq must be >= 0: {fault!r}")
            return
        if isinstance(fault, (DriverCrash, DriverPartition)):
            if fault.driver_id < 0:
                raise PlanError(f"driver_id must be >= 0: {fault!r}")
            if isinstance(fault, DriverCrash) and \
                    fault.restart_after is not None and \
                    not (fault.restart_after > 0):
                raise PlanError(f"restart_after must be > 0: {fault!r}")
            if isinstance(fault, DriverPartition) and \
                    fault.heal_after is not None and \
                    not (fault.heal_after > 0):
                raise PlanError(f"heal_after must be > 0: {fault!r}")
            return
        if not isinstance(fault, LinkPartition) and fault.machine_id < 0:
            raise PlanError(f"machine_id must be >= 0: {fault!r}")
        if isinstance(fault, MachineCrash):
            if fault.restart_after is not None and \
                    not (fault.restart_after > 0):
                raise PlanError(f"restart_after must be > 0: {fault!r}")
        elif isinstance(fault, DiskFault):
            if fault.disk_index < 0:
                raise PlanError(f"disk_index must be >= 0: {fault!r}")
        elif isinstance(fault, TransientSlowdown):
            if not (fault.duration > 0):
                raise PlanError(f"slowdown duration must be > 0: {fault!r}")
            if fault.cpu_factor < 1.0 or fault.disk_factor < 1.0:
                raise PlanError(
                    f"slowdown factors must be >= 1.0: {fault!r}")
        elif isinstance(fault, NetworkDegradation):
            if fault.up_factor < 1.0 or fault.down_factor < 1.0:
                raise PlanError(
                    f"degradation factors must be >= 1.0: {fault!r}")
            if fault.duration is not None and not (fault.duration > 0):
                raise PlanError(
                    f"degradation duration must be > 0: {fault!r}")
        elif isinstance(fault, LinkPartition):
            if fault.src_machine_id < 0 or fault.dst_machine_id < 0:
                raise PlanError(f"machine ids must be >= 0: {fault!r}")
            if fault.src_machine_id == fault.dst_machine_id:
                raise PlanError(
                    f"partition endpoints must differ: {fault!r}")
            if fault.heal_after is not None and not (fault.heal_after > 0):
                raise PlanError(f"heal_after must be > 0: {fault!r}")
        else:
            raise PlanError(f"unknown fault type: {fault!r}")

    def __len__(self) -> int:
        return len(self.faults)

    def __iter__(self):
        return iter(self.faults)


#: Kind names accepted by :func:`random_plan`'s ``kind_weights``.
_KIND_NAMES = ("crash", "disk", "slowdown", "degradation", "partition",
               "driver-crash", "driver-partition")


def random_plan(rng: RngStreams, machine_ids: Sequence[int],
                horizon_s: float, num_faults: int = 1,
                restart_after: Optional[float] = None,
                kind_weights: Optional[Dict[str, float]] = None,
                num_disks: int = 1, num_drivers: int = 0) -> FaultPlan:
    """Sample ``num_faults`` faults from a seeded stream.

    Without ``kind_weights`` every fault is a :class:`MachineCrash`
    (the historical behavior).  With it, each fault's kind is drawn
    from the weighted distribution over ``{"crash", "disk",
    "slowdown", "degradation", "partition", "driver-crash",
    "driver-partition"}`` using the *same* seeded stream, so the same
    (seed, machine set, horizon, weights) always yields the same plan.
    ``num_disks`` bounds sampled disk indices; ``num_drivers`` bounds
    sampled driver ids and must be > 0 to weight the driver kinds.
    """
    stream = rng.stream("fault-plan")
    machines = sorted(machine_ids)
    if kind_weights is not None:
        unknown = sorted(set(kind_weights) - set(_KIND_NAMES))
        if unknown:
            raise PlanError(f"unknown fault kinds: {unknown}")
        kinds = [k for k in _KIND_NAMES if kind_weights.get(k, 0.0) > 0]
        weights = [kind_weights[k] for k in kinds]
        if not kinds:
            raise PlanError("kind_weights has no positive weight")
        if num_drivers < 1 and any(k.startswith("driver-") for k in kinds):
            raise PlanError(
                "driver fault kinds need num_drivers >= 1")
    faults: List[Fault] = []
    for _ in range(num_faults):
        machine_id = stream.choice(machines)
        at = stream.uniform(0.0, horizon_s)
        if kind_weights is None:
            kind = "crash"
        else:
            kind = stream.choices(kinds, weights=weights)[0]
        if kind == "crash":
            faults.append(MachineCrash(at=at, machine_id=machine_id,
                                       restart_after=restart_after))
        elif kind == "disk":
            faults.append(DiskFault(at=at, machine_id=machine_id,
                                    disk_index=stream.randrange(num_disks)))
        elif kind == "slowdown":
            faults.append(TransientSlowdown(
                at=at, machine_id=machine_id,
                duration=stream.uniform(horizon_s / 20, horizon_s / 4),
                cpu_factor=stream.uniform(1.5, 4.0),
                disk_factor=stream.uniform(1.5, 4.0)))
        elif kind == "degradation":
            faults.append(NetworkDegradation(
                at=at, machine_id=machine_id,
                up_factor=stream.uniform(2.0, 10.0),
                down_factor=stream.uniform(2.0, 10.0),
                duration=stream.uniform(horizon_s / 10, horizon_s / 2)))
        elif kind == "driver-crash":
            faults.append(DriverCrash(
                at=at, driver_id=stream.randrange(num_drivers),
                restart_after=restart_after))
        elif kind == "driver-partition":
            faults.append(DriverPartition(
                at=at, driver_id=stream.randrange(num_drivers),
                heal_after=stream.uniform(horizon_s / 10, horizon_s / 2)))
        else:
            others = [m for m in machines if m != machine_id]
            if not others:
                raise PlanError("partition faults need >= 2 machines")
            faults.append(LinkPartition(
                at=at, src_machine_id=machine_id,
                dst_machine_id=stream.choice(others),
                heal_after=stream.uniform(horizon_s / 10, horizon_s / 2)))
    return FaultPlan(faults)


def fail_slow_plan(machine_id: int = 1, at: float = 5.0,
                   factor: float = 10.0) -> FaultPlan:
    """The canonical gray-failure scenario: one machine's NIC drops to
    ``1/factor`` of nominal speed at ``at`` and never self-heals.

    The machine keeps accepting work, so without health monitoring it
    silently inflates every shuffle that touches it; with monitoring
    the slow NIC is attributed and the machine excluded.
    """
    return FaultPlan([NetworkDegradation(
        at=at, machine_id=machine_id,
        up_factor=factor, down_factor=factor)])
