"""Deterministic fault schedules.

A :class:`FaultPlan` is a sorted list of faults to inject at known
simulation times.  Plans are data, not behavior: the same plan applied
to the same workload with the same seed produces a byte-identical event
trace, which is what makes failures debuggable in this repo the same
way monotasks make performance debuggable in the paper.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Union

from repro.errors import PlanError
from repro.simulator.rng import RngStreams

__all__ = ["MachineCrash", "DiskFault", "TransientSlowdown", "FaultPlan",
           "random_plan"]


@dataclass(frozen=True)
class MachineCrash:
    """Machine loses everything volatile at time ``at``; optionally
    restarts ``restart_after`` seconds later (empty, like a reimage)."""

    at: float
    machine_id: int
    restart_after: Optional[float] = None


@dataclass(frozen=True)
class DiskFault:
    """One disk fails permanently: outstanding requests error and data
    stored on it (shuffle output, DFS blocks) is lost."""

    at: float
    machine_id: int
    disk_index: int


@dataclass(frozen=True)
class TransientSlowdown:
    """Machine degrades for ``duration`` seconds, then recovers.

    ``cpu_factor`` multiplies compute times; ``disk_factor`` divides
    disk bandwidth (both > 1 mean slower), modeling contention from a
    co-located tenant or a failing-but-not-dead disk.
    """

    at: float
    machine_id: int
    duration: float
    cpu_factor: float = 1.0
    disk_factor: float = 1.0


Fault = Union[MachineCrash, DiskFault, TransientSlowdown]

_KIND_ORDER = {MachineCrash: 0, DiskFault: 1, TransientSlowdown: 2}


class FaultPlan:
    """A validated, time-sorted schedule of faults."""

    def __init__(self, faults: Sequence[Fault] = ()) -> None:
        for fault in faults:
            self._validate(fault)
        self.faults: List[Fault] = sorted(
            faults, key=lambda f: (f.at, _KIND_ORDER[type(f)], f.machine_id))

    @staticmethod
    def _validate(fault: Fault) -> None:
        if not (fault.at >= 0) or fault.at == float("inf"):
            raise PlanError(f"fault time must be finite and >= 0: {fault!r}")
        if isinstance(fault, MachineCrash):
            if fault.restart_after is not None and \
                    not (fault.restart_after > 0):
                raise PlanError(f"restart_after must be > 0: {fault!r}")
        elif isinstance(fault, TransientSlowdown):
            if not (fault.duration > 0):
                raise PlanError(f"slowdown duration must be > 0: {fault!r}")
            if fault.cpu_factor < 1.0 or fault.disk_factor < 1.0:
                raise PlanError(
                    f"slowdown factors must be >= 1.0: {fault!r}")
        elif not isinstance(fault, DiskFault):
            raise PlanError(f"unknown fault type: {fault!r}")

    def __len__(self) -> int:
        return len(self.faults)

    def __iter__(self):
        return iter(self.faults)


def random_plan(rng: RngStreams, machine_ids: Sequence[int],
                horizon_s: float, num_faults: int = 1,
                restart_after: Optional[float] = None) -> FaultPlan:
    """Sample ``num_faults`` machine crashes from a seeded stream.

    The same (seed, machine set, horizon) always yields the same plan.
    """
    stream = rng.stream("fault-plan")
    faults: List[Fault] = []
    for _ in range(num_faults):
        machine_id = stream.choice(sorted(machine_ids))
        at = stream.uniform(0.0, horizon_s)
        faults.append(MachineCrash(at=at, machine_id=machine_id,
                                   restart_after=restart_after))
    return FaultPlan(faults)
