"""Applies a :class:`~repro.faults.plan.FaultPlan` to a running engine.

One driver process walks the sorted plan, sleeping until each fault's
time and invoking the engine's fault entry points
(:meth:`crash_machine`, :meth:`fail_disk`) or the cluster's degradation
knobs.  Restarts and recoveries are scheduled as separate processes so
a crash-with-restart does not block later faults.  Every action is
recorded as a :class:`~repro.metrics.events.FaultEventRecord` so traces
under the same (plan, seed) are byte-identical.

Gray faults targeting a machine that is already dead at fault time are
skipped and recorded with ``detail="target down"`` -- degrading a
corpse is meaningless and restoring it later would fight the crash
recovery path.
"""

from __future__ import annotations

from typing import Generator

from repro.faults.plan import (BlockCorruption, DiskFault, DriverCrash,
                               DriverPartition, FaultPlan, LinkPartition,
                               MachineCrash, NetworkDegradation,
                               StorageNodeCrash, TransientSlowdown)
from repro.metrics.events import FaultEventRecord

__all__ = ["FaultInjector"]


class FaultInjector:
    """Drives a fault plan against an engine during a run."""

    def __init__(self, engine, plan: FaultPlan) -> None:
        self.engine = engine
        self.env = engine.env
        self.plan = plan

    def start(self) -> None:
        """Spawn the driver process; call before ``run_jobs``."""
        self.env.process(self._drive())

    def _record(self, kind: str, machine_id: int, detail: str = "") -> None:
        self.engine.metrics.record_fault(FaultEventRecord(
            kind=kind, machine_id=machine_id, at=self.env.now, detail=detail))

    def _target_down(self, machine_id: int) -> bool:
        return self.engine.machine_is_dead(machine_id)

    def _drive(self) -> Generator:
        network = self.engine.cluster.network
        for fault in self.plan:
            if fault.at > self.env.now:
                yield self.env.timeout(fault.at - self.env.now)
            if isinstance(fault, MachineCrash):
                self.engine.crash_machine(fault.machine_id)
                self._record("machine-crash", fault.machine_id)
                if fault.restart_after is not None:
                    self.env.process(self._restart(fault))
            elif isinstance(fault, DiskFault):
                if self._target_down(fault.machine_id):
                    self._record("disk-failure-skipped", fault.machine_id,
                                 detail="target down")
                    continue
                self.engine.fail_disk(fault.machine_id, fault.disk_index)
                self._record("disk-failure", fault.machine_id,
                             detail=f"disk {fault.disk_index}")
            elif isinstance(fault, TransientSlowdown):
                if self._target_down(fault.machine_id):
                    self._record("slowdown-skipped", fault.machine_id,
                                 detail="target down")
                    continue
                self.engine.cluster.degrade_machine(
                    fault.machine_id,
                    cpu_factor=1.0 / fault.cpu_factor,
                    disk_factor=1.0 / fault.disk_factor)
                self._record("slowdown", fault.machine_id,
                             detail=f"for {fault.duration:g}s")
                self.env.process(self._restore(fault))
            elif isinstance(fault, NetworkDegradation):
                if self._target_down(fault.machine_id):
                    self._record("net-degradation-skipped", fault.machine_id,
                                 detail="target down")
                    continue
                network.degrade_link(
                    fault.machine_id,
                    up_factor=1.0 / fault.up_factor,
                    down_factor=1.0 / fault.down_factor)
                duration = ("permanent" if fault.duration is None
                            else f"for {fault.duration:g}s")
                self._record("net-degradation", fault.machine_id,
                             detail=f"{fault.up_factor:g}x/"
                                    f"{fault.down_factor:g}x {duration}")
                if fault.duration is not None:
                    self.env.process(self._restore_link(fault))
            elif isinstance(fault, LinkPartition):
                killed = network.partition_link(
                    fault.src_machine_id, fault.dst_machine_id)
                heal = ("permanent" if fault.heal_after is None
                        else f"heals in {fault.heal_after:g}s")
                self._record("link-partition", fault.src_machine_id,
                             detail=f"-> {fault.dst_machine_id}, "
                                    f"{killed} flows killed, {heal}")
                if fault.heal_after is not None:
                    self.env.process(self._heal(fault))
            elif isinstance(fault, StorageNodeCrash):
                service = self._service(fault)
                if service is None:
                    continue
                if service.nodes[fault.node_index].down:
                    self._record(
                        "storage-crash-skipped",
                        service.node_machine_id(fault.node_index),
                        detail="target down")
                    continue
                service.crash_node(fault.node_index)
                self._record("storage-crash",
                             service.node_machine_id(fault.node_index),
                             detail=f"storage node {fault.node_index}")
                if fault.restart_after is not None:
                    self.env.process(self._restart_node(fault, service))
            elif isinstance(fault, BlockCorruption):
                service = self._service(fault)
                if service is None:
                    continue
                block_id = service.corrupt_block(fault.node_index,
                                                 fault.block_seq)
                machine_id = service.node_machine_id(fault.node_index)
                if not block_id:
                    self._record("block-corruption-skipped", machine_id,
                                 detail="no blocks held")
                    continue
                self._record("block-corruption", machine_id,
                             detail=f"block {block_id} on storage "
                                    f"node {fault.node_index}")
            elif isinstance(fault, DriverCrash):
                plane = self._controlplane(fault)
                if plane is None:
                    continue
                if plane.driver_is_down(fault.driver_id):
                    self._record("driver-crash-skipped", -1,
                                 detail="target down")
                    continue
                plane.crash_driver(fault.driver_id)
                self._record("driver-crash", -1,
                             detail=f"driver {fault.driver_id}")
                if fault.restart_after is not None:
                    self.env.process(self._restart_driver(fault, plane))
            elif isinstance(fault, DriverPartition):
                plane = self._controlplane(fault)
                if plane is None:
                    continue
                if plane.driver_is_down(fault.driver_id):
                    self._record("driver-partition-skipped", -1,
                                 detail="target down")
                    continue
                if plane.driver_is_partitioned(fault.driver_id):
                    self._record("driver-partition-skipped", -1,
                                 detail="already partitioned")
                    continue
                plane.partition_driver(fault.driver_id)
                heal = ("permanent" if fault.heal_after is None
                        else f"heals in {fault.heal_after:g}s")
                self._record("driver-partition", -1,
                             detail=f"driver {fault.driver_id}, {heal}")
                if fault.heal_after is not None:
                    self.env.process(self._heal_driver(fault, plane))

    def _controlplane(self, fault) -> object:
        """The engine's control plane, or None (recorded as skipped)."""
        kind = ("driver-crash" if isinstance(fault, DriverCrash)
                else "driver-partition")
        plane = getattr(self.engine, "controlplane", None)
        if plane is None:
            self._record(f"{kind}-skipped", -1, detail="no control plane")
            return None
        if not (0 <= fault.driver_id < plane.num_drivers):
            self._record(f"{kind}-skipped", -1,
                         detail=f"no driver {fault.driver_id}")
            return None
        return plane

    def _restart_driver(self, fault: DriverCrash, plane) -> Generator:
        yield self.env.timeout(fault.restart_after)
        plane.restart_driver(fault.driver_id)
        self._record("driver-restart", -1,
                     detail=f"driver {fault.driver_id}")

    def _heal_driver(self, fault: DriverPartition, plane) -> Generator:
        yield self.env.timeout(fault.heal_after)
        if plane.driver_is_down(fault.driver_id):
            self._record("driver-partition-heal-skipped", -1,
                         detail="target down")
            return
        plane.heal_driver(fault.driver_id)
        self._record("driver-partition-heal", -1,
                     detail=f"driver {fault.driver_id}")

    def _service(self, fault) -> object:
        """The engine's data service, or None (recorded as skipped)."""
        service = getattr(self.engine, "datasvc", None)
        if service is None:
            self._record(f"{self._storage_kind(fault)}-skipped", -1,
                         detail="no data service")
            return None
        if not (0 <= fault.node_index < service.num_nodes):
            self._record(f"{self._storage_kind(fault)}-skipped", -1,
                         detail=f"no storage node {fault.node_index}")
            return None
        return service

    @staticmethod
    def _storage_kind(fault) -> str:
        return ("storage-crash" if isinstance(fault, StorageNodeCrash)
                else "block-corruption")

    def _restart_node(self, fault: StorageNodeCrash,
                      service) -> Generator:
        yield self.env.timeout(fault.restart_after)
        service.restart_node(fault.node_index)
        self._record("storage-restart",
                     service.node_machine_id(fault.node_index),
                     detail=f"storage node {fault.node_index}")

    def _restart(self, fault: MachineCrash) -> Generator:
        yield self.env.timeout(fault.restart_after)
        self.engine.restart_machine(fault.machine_id)
        self._record("machine-restart", fault.machine_id)

    def _restore(self, fault: TransientSlowdown) -> Generator:
        yield self.env.timeout(fault.duration)
        if self._target_down(fault.machine_id):
            self._record("slowdown-end-skipped", fault.machine_id,
                         detail="target down")
            return
        self.engine.cluster.restore_machine(fault.machine_id)
        self._record("slowdown-end", fault.machine_id)

    def _restore_link(self, fault: NetworkDegradation) -> Generator:
        yield self.env.timeout(fault.duration)
        if self._target_down(fault.machine_id):
            self._record("net-degradation-end-skipped", fault.machine_id,
                         detail="target down")
            return
        self.engine.cluster.network.restore_link(fault.machine_id)
        self._record("net-degradation-end", fault.machine_id)

    def _heal(self, fault: LinkPartition) -> Generator:
        yield self.env.timeout(fault.heal_after)
        self.engine.cluster.network.heal_link(
            fault.src_machine_id, fault.dst_machine_id)
        self._record("link-heal", fault.src_machine_id,
                     detail=f"-> {fault.dst_machine_id}")
