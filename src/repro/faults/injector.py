"""Applies a :class:`~repro.faults.plan.FaultPlan` to a running engine.

One driver process walks the sorted plan, sleeping until each fault's
time and invoking the engine's fault entry points
(:meth:`crash_machine`, :meth:`fail_disk`) or the cluster's degradation
knobs.  Restarts and recoveries are scheduled as separate processes so
a crash-with-restart does not block later faults.  Every action is
recorded as a :class:`~repro.metrics.events.FaultEventRecord` so traces
under the same (plan, seed) are byte-identical.

Gray faults targeting a machine that is already dead at fault time are
skipped and recorded with ``detail="target down"`` -- degrading a
corpse is meaningless and restoring it later would fight the crash
recovery path.
"""

from __future__ import annotations

from typing import Generator

from repro.faults.plan import (DiskFault, FaultPlan, LinkPartition,
                               MachineCrash, NetworkDegradation,
                               TransientSlowdown)
from repro.metrics.events import FaultEventRecord

__all__ = ["FaultInjector"]


class FaultInjector:
    """Drives a fault plan against an engine during a run."""

    def __init__(self, engine, plan: FaultPlan) -> None:
        self.engine = engine
        self.env = engine.env
        self.plan = plan

    def start(self) -> None:
        """Spawn the driver process; call before ``run_jobs``."""
        self.env.process(self._drive())

    def _record(self, kind: str, machine_id: int, detail: str = "") -> None:
        self.engine.metrics.record_fault(FaultEventRecord(
            kind=kind, machine_id=machine_id, at=self.env.now, detail=detail))

    def _target_down(self, machine_id: int) -> bool:
        return self.engine.machine_is_dead(machine_id)

    def _drive(self) -> Generator:
        network = self.engine.cluster.network
        for fault in self.plan:
            if fault.at > self.env.now:
                yield self.env.timeout(fault.at - self.env.now)
            if isinstance(fault, MachineCrash):
                self.engine.crash_machine(fault.machine_id)
                self._record("machine-crash", fault.machine_id)
                if fault.restart_after is not None:
                    self.env.process(self._restart(fault))
            elif isinstance(fault, DiskFault):
                if self._target_down(fault.machine_id):
                    self._record("disk-failure-skipped", fault.machine_id,
                                 detail="target down")
                    continue
                self.engine.fail_disk(fault.machine_id, fault.disk_index)
                self._record("disk-failure", fault.machine_id,
                             detail=f"disk {fault.disk_index}")
            elif isinstance(fault, TransientSlowdown):
                if self._target_down(fault.machine_id):
                    self._record("slowdown-skipped", fault.machine_id,
                                 detail="target down")
                    continue
                self.engine.cluster.degrade_machine(
                    fault.machine_id,
                    cpu_factor=1.0 / fault.cpu_factor,
                    disk_factor=1.0 / fault.disk_factor)
                self._record("slowdown", fault.machine_id,
                             detail=f"for {fault.duration:g}s")
                self.env.process(self._restore(fault))
            elif isinstance(fault, NetworkDegradation):
                if self._target_down(fault.machine_id):
                    self._record("net-degradation-skipped", fault.machine_id,
                                 detail="target down")
                    continue
                network.degrade_link(
                    fault.machine_id,
                    up_factor=1.0 / fault.up_factor,
                    down_factor=1.0 / fault.down_factor)
                duration = ("permanent" if fault.duration is None
                            else f"for {fault.duration:g}s")
                self._record("net-degradation", fault.machine_id,
                             detail=f"{fault.up_factor:g}x/"
                                    f"{fault.down_factor:g}x {duration}")
                if fault.duration is not None:
                    self.env.process(self._restore_link(fault))
            elif isinstance(fault, LinkPartition):
                killed = network.partition_link(
                    fault.src_machine_id, fault.dst_machine_id)
                heal = ("permanent" if fault.heal_after is None
                        else f"heals in {fault.heal_after:g}s")
                self._record("link-partition", fault.src_machine_id,
                             detail=f"-> {fault.dst_machine_id}, "
                                    f"{killed} flows killed, {heal}")
                if fault.heal_after is not None:
                    self.env.process(self._heal(fault))

    def _restart(self, fault: MachineCrash) -> Generator:
        yield self.env.timeout(fault.restart_after)
        self.engine.restart_machine(fault.machine_id)
        self._record("machine-restart", fault.machine_id)

    def _restore(self, fault: TransientSlowdown) -> Generator:
        yield self.env.timeout(fault.duration)
        if self._target_down(fault.machine_id):
            self._record("slowdown-end-skipped", fault.machine_id,
                         detail="target down")
            return
        self.engine.cluster.restore_machine(fault.machine_id)
        self._record("slowdown-end", fault.machine_id)

    def _restore_link(self, fault: NetworkDegradation) -> Generator:
        yield self.env.timeout(fault.duration)
        if self._target_down(fault.machine_id):
            self._record("net-degradation-end-skipped", fault.machine_id,
                         detail="target down")
            return
        self.engine.cluster.network.restore_link(fault.machine_id)
        self._record("net-degradation-end", fault.machine_id)

    def _heal(self, fault: LinkPartition) -> Generator:
        yield self.env.timeout(fault.heal_after)
        self.engine.cluster.network.heal_link(
            fault.src_machine_id, fault.dst_machine_id)
        self._record("link-heal", fault.src_machine_id,
                     detail=f"-> {fault.dst_machine_id}")
