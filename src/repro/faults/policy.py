"""Retry, backoff, and speculation knobs for fault recovery.

The engines recover from injected faults (``repro.faults.plan``) the way
Spark does: failed attempts retry with bounded exponential backoff,
missing map output triggers lineage re-execution, and stragglers can be
speculatively duplicated.  Everything is a plain number here so a run is
reproducible from (workload, plan, policy, seed) alone.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["RecoveryPolicy"]


@dataclass(frozen=True)
class RecoveryPolicy:
    """How the engine responds to task failures and stragglers."""

    #: Give up on a task after this many genuinely failed attempts
    #: (killed attempts -- crashes, lost speculation races -- are free).
    max_attempts: int = 4
    #: Exponential backoff before retrying a failed attempt.
    backoff_base_s: float = 0.5
    backoff_factor: float = 2.0
    backoff_max_s: float = 10.0
    #: Fetch failures re-run lineage rather than burning attempts, but
    #: are still bounded to catch unrecoverable shuffles.
    max_fetch_retries: int = 8
    #: Speculation is off by default so fault-free runs are identical
    #: to runs without any recovery machinery.
    speculation: bool = False
    #: How often the stage monitor looks for stragglers.
    speculation_interval_s: float = 1.0
    #: Fraction of a stage's tasks that must have completed before any
    #: running task can be called a straggler.
    speculation_min_completed_fraction: float = 0.5
    #: A running task is overdue when it has run longer than
    #: ``multiplier`` x the ``percentile`` of completed durations.
    speculation_percentile: float = 0.75
    speculation_multiplier: float = 1.5

    def backoff_s(self, failures: int) -> float:
        """Delay before retry number ``failures`` (1-based)."""
        delay = self.backoff_base_s * (
            self.backoff_factor ** max(failures - 1, 0))
        return min(self.backoff_max_s, delay)
