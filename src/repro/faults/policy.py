"""Retry, backoff, and speculation knobs for fault recovery.

The engines recover from injected faults (``repro.faults.plan``) the way
Spark does: failed attempts retry with bounded exponential backoff,
missing map output triggers lineage re-execution, and stragglers can be
speculatively duplicated.  Everything is a plain number here so a run is
reproducible from (workload, plan, policy, seed) alone.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import ConfigError

__all__ = ["RecoveryPolicy"]


@dataclass(frozen=True)
class RecoveryPolicy:
    """How the engine responds to task failures and stragglers.

    All backoff fields are validated at construction: a NaN or negative
    delay would poison the event heap (``timeout(nan)`` compares as
    neither earlier nor later than anything), and an infinite or
    missing cap would let ``backoff_factor ** failures`` grow without
    bound across many retries.  ``backoff_max_s`` is that validated
    cap: no retry ever waits longer, however many attempts preceded it.
    """

    #: Give up on a task after this many genuinely failed attempts
    #: (killed attempts -- crashes, lost speculation races -- are free).
    max_attempts: int = 4
    #: Exponential backoff before retrying a failed attempt.
    backoff_base_s: float = 0.5
    backoff_factor: float = 2.0
    #: Hard cap on any single retry delay (the validated ``max_backoff``
    #: bound; must be finite and > 0).
    backoff_max_s: float = 10.0
    #: Fetch failures re-run lineage rather than burning attempts, but
    #: are still bounded to catch unrecoverable shuffles.
    max_fetch_retries: int = 8
    #: Speculation is off by default so fault-free runs are identical
    #: to runs without any recovery machinery.
    speculation: bool = False
    #: How often the stage monitor looks for stragglers.
    speculation_interval_s: float = 1.0
    #: Fraction of a stage's tasks that must have completed before any
    #: running task can be called a straggler.
    speculation_min_completed_fraction: float = 0.5
    #: A running task is overdue when it has run longer than
    #: ``multiplier`` x the ``percentile`` of completed durations.
    speculation_percentile: float = 0.75
    speculation_multiplier: float = 1.5

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ConfigError(
                f"max_attempts must be >= 1: {self.max_attempts}")
        if not (math.isfinite(self.backoff_base_s)
                and self.backoff_base_s >= 0):
            raise ConfigError(
                f"backoff_base_s must be finite and >= 0: "
                f"{self.backoff_base_s}")
        if not (math.isfinite(self.backoff_factor)
                and self.backoff_factor >= 1.0):
            raise ConfigError(
                f"backoff_factor must be finite and >= 1: "
                f"{self.backoff_factor}")
        if not (math.isfinite(self.backoff_max_s)
                and self.backoff_max_s > 0):
            raise ConfigError(
                f"backoff_max_s must be finite and > 0: "
                f"{self.backoff_max_s}")
        if self.max_fetch_retries < 1:
            raise ConfigError(
                f"max_fetch_retries must be >= 1: {self.max_fetch_retries}")
        if not (math.isfinite(self.speculation_interval_s)
                and self.speculation_interval_s > 0):
            raise ConfigError(
                f"speculation_interval_s must be finite and > 0: "
                f"{self.speculation_interval_s}")

    def backoff_s(self, failures: int) -> float:
        """Delay before retry number ``failures`` (1-based).

        Capped multiplicatively, so the exponent can never overflow no
        matter how many failures accumulate.
        """
        delay = self.backoff_base_s
        for _ in range(max(failures - 1, 0)):
            delay *= self.backoff_factor
            if delay >= self.backoff_max_s:
                return self.backoff_max_s
        return min(self.backoff_max_s, delay)
