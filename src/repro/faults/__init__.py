"""Deterministic fault injection and recovery.

The paper argues monotasks make *performance* comprehensible; this
package makes *failures* comprehensible the same way: faults are data
(:class:`FaultPlan`), injection is a deterministic simulation process
(:class:`FaultInjector`), and recovery behavior is a frozen policy
(:class:`RecoveryPolicy`).  The same workload + plan + seed always
produces the same trace, injected faults included.
"""

from repro.faults.injector import FaultInjector
from repro.faults.plan import (BlockCorruption, DiskFault, DriverCrash,
                               DriverPartition, FaultPlan, LinkPartition,
                               MachineCrash, NetworkDegradation,
                               StorageNodeCrash, TransientSlowdown,
                               fail_slow_plan, random_plan)
from repro.faults.policy import RecoveryPolicy

__all__ = [
    "BlockCorruption",
    "DiskFault",
    "DriverCrash",
    "DriverPartition",
    "FaultInjector",
    "FaultPlan",
    "LinkPartition",
    "MachineCrash",
    "NetworkDegradation",
    "RecoveryPolicy",
    "StorageNodeCrash",
    "TransientSlowdown",
    "fail_slow_plan",
    "random_plan",
]
