"""The exclusion state machine: suspicion, exclusion, probation.

Pure bookkeeping with no simulation or engine dependencies, so its
decisions are trivially deterministic: the same tick inputs always
produce the same transitions.  Per machine::

    HEALTHY --suspect x threshold--> EXCLUDED
    EXCLUDED --probation_after_s elapsed--> PROBATION
    PROBATION --clean x probation_ticks--> HEALTHY (reinstated)
    PROBATION --suspect on fresh data--> EXCLUDED (re-excluded)

Probation verdicts require *fresh* observations (probe attempts that
actually ran on the machine); stale pre-exclusion rates neither condemn
nor clear it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from repro.health.policy import HealthPolicy

__all__ = ["Blacklist", "HEALTHY", "EXCLUDED", "PROBATION"]

HEALTHY = "healthy"
EXCLUDED = "excluded"
PROBATION = "probation"


@dataclass
class _MachineState:
    state: str = HEALTHY
    strikes: int = 0
    since: float = 0.0
    clean_ticks: int = 0


@dataclass
class Blacklist:
    """Tracks each machine's exclusion state across monitor ticks."""

    policy: HealthPolicy = field(default_factory=HealthPolicy)

    def __post_init__(self) -> None:
        self._machines: Dict[int, _MachineState] = {}

    def _entry(self, machine_id: int) -> _MachineState:
        entry = self._machines.get(machine_id)
        if entry is None:
            entry = self._machines[machine_id] = _MachineState()
        return entry

    def state(self, machine_id: int) -> str:
        """The machine's current state name."""
        return self._entry(machine_id).state

    def excluded_count(self) -> int:
        """Machines currently excluded or on probation."""
        return sum(1 for e in self._machines.values()
                   if e.state != HEALTHY)

    def observe(self, machine_id: int, suspect: bool, fresh: bool,
                now: float, can_exclude: bool = True) -> List[str]:
        """Fold one tick's verdict; returns the transitions to enact.

        ``suspect`` is this tick's median test result, ``fresh`` whether
        any new observations from the machine arrived since the last
        tick, ``can_exclude`` whether the exclusion budget allows
        another exclusion.  Possible returns: ``["suspect"]``,
        ``["exclude"]``, ``["probation"]``, ``["reinstate"]``, ``[]``.
        """
        entry = self._entry(machine_id)
        policy = self.policy
        if entry.state == HEALTHY:
            if not suspect:
                entry.strikes = 0
                return []
            entry.strikes += 1
            if entry.strikes >= policy.suspicion_threshold and can_exclude:
                entry.state = EXCLUDED
                entry.since = now
                entry.strikes = 0
                return ["exclude"]
            return ["suspect"]
        if entry.state == EXCLUDED:
            if now - entry.since >= policy.probation_after_s - 1e-9:
                entry.state = PROBATION
                entry.since = now
                entry.clean_ticks = 0
                return ["probation"]
            return []
        # PROBATION: judge only on evidence gathered by probe attempts.
        if not fresh:
            return []
        if suspect:
            entry.state = EXCLUDED
            entry.since = now
            return ["exclude"]
        entry.clean_ticks += 1
        if entry.clean_ticks >= policy.probation_ticks:
            entry.state = HEALTHY
            entry.strikes = 0
            return ["reinstate"]
        return []
