"""Knobs for online gray-failure detection and exclusion."""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigError

__all__ = ["HealthPolicy"]


@dataclass(frozen=True)
class HealthPolicy:
    """How the health monitor decides a machine is fail-slow.

    Every tick the monitor compares each machine's observed per-resource
    rate to the cluster median; a machine whose rate falls below
    ``slow_factor`` of the median is *suspect*.  After
    ``suspicion_threshold`` consecutive suspect ticks the machine is
    excluded; ``probation_after_s`` seconds later it enters probation,
    where a bounded number of probe attempts generate fresh
    observations, and after ``probation_ticks`` consecutive clean ticks
    it is reinstated (a still-slow machine is re-excluded instead).
    All thresholds are deterministic functions of the simulation, so
    exclusion decisions replay byte-identically under the same seed.
    """

    #: Seconds between monitor ticks (the heartbeat interval).
    interval_s: float = 5.0
    #: Suspect when rate < slow_factor * cluster median for a resource.
    slow_factor: float = 0.5
    #: Observations required before a machine's rate is trusted.
    min_observations: int = 3
    #: Consecutive suspect ticks before exclusion.
    suspicion_threshold: int = 2
    #: Seconds an exclusion lasts before probation begins.
    probation_after_s: float = 30.0
    #: Consecutive clean probation ticks before reinstatement.
    probation_ticks: int = 2
    #: Never exclude beyond this fraction of the cluster (dead machines
    #: count against the budget; losing quorum to the monitor would be
    #: worse than tolerating a slow machine).
    max_excluded_fraction: float = 0.5
    #: EWMA weight of each new observation in the rate estimate.
    ewma_alpha: float = 0.5

    def __post_init__(self) -> None:
        if not (self.interval_s > 0):
            raise ConfigError(f"interval_s must be > 0: {self.interval_s}")
        if not (0.0 < self.slow_factor < 1.0):
            raise ConfigError(
                f"slow_factor must be in (0, 1): {self.slow_factor}")
        if self.min_observations < 1:
            raise ConfigError(
                f"min_observations must be >= 1: {self.min_observations}")
        if self.suspicion_threshold < 1:
            raise ConfigError(
                f"suspicion_threshold must be >= 1: "
                f"{self.suspicion_threshold}")
        if not (self.probation_after_s > 0):
            raise ConfigError(
                f"probation_after_s must be > 0: {self.probation_after_s}")
        if self.probation_ticks < 1:
            raise ConfigError(
                f"probation_ticks must be >= 1: {self.probation_ticks}")
        if not (0.0 < self.max_excluded_fraction <= 1.0):
            raise ConfigError(f"max_excluded_fraction must be in (0, 1]: "
                              f"{self.max_excluded_fraction}")
        if not (0.0 < self.ewma_alpha <= 1.0):
            raise ConfigError(
                f"ewma_alpha must be in (0, 1]: {self.ewma_alpha}")
