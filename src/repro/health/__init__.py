"""Online gray-failure detection, attribution, and exclusion.

The paper's thesis is that per-resource monotasks make performance
*attributable*; this package turns that attribution into a control
loop.  A :class:`HealthMonitor` ticks alongside a run, estimating each
machine's per-resource rates from the engine's own telemetry
(:mod:`repro.health.estimators`), flagging machines that fall behind
the cluster median, and driving a deterministic exclusion state
machine (:mod:`repro.health.blacklist`) whose transitions feed back
into scheduling through the engine's exclusion entry points.

MonoSpark's monitor can say *which resource* on *which machine* is
sick; the Spark baseline's task-level EWMA cannot -- the same
observability gap as the paper's §6.6, exercised online.
"""

from repro.health.blacklist import EXCLUDED, HEALTHY, PROBATION, Blacklist
from repro.health.estimators import (TASK, MonotaskRateEstimator,
                                     TaskEwmaEstimator)
from repro.health.monitor import HealthMonitor
from repro.health.policy import HealthPolicy

__all__ = [
    "Blacklist",
    "EXCLUDED",
    "HEALTHY",
    "HealthMonitor",
    "HealthPolicy",
    "MonotaskRateEstimator",
    "PROBATION",
    "TASK",
    "TaskEwmaEstimator",
]
