"""The health monitor: periodic heartbeats, detection, exclusion.

One simulation process ticks every ``policy.interval_s`` seconds.  Each
tick it (1) notes heartbeat transitions (a crashed machine misses its
heartbeat), (2) folds newly finished records into the engine's rate
estimator, (3) runs the median test per resource to find suspects,
(4) advances each machine's :class:`~repro.health.blacklist.Blacklist`
state, and (5) enacts transitions through the engine's exclusion entry
points -- :meth:`exclude_machine` (which also speculatively
re-dispatches the machine's in-flight work), :meth:`probation_machine`,
and :meth:`reinstate_machine`.  Every decision is emitted as a
:class:`~repro.metrics.events.HealthEventRecord`, so the exclusion
timeline is part of the byte-identical trace.

The monitor is bounded: give ``start()`` a horizon (batch runs) or call
``stop()`` when serving completes, so the event queue drains and
``env.run()``-to-exhaustion tests still terminate.
"""

from __future__ import annotations

from statistics import median
from typing import Dict, Generator, Optional, Tuple

from repro.health.blacklist import Blacklist
from repro.health.policy import HealthPolicy
from repro.metrics.events import HealthEventRecord

__all__ = ["HealthMonitor"]


class HealthMonitor:
    """Online per-machine health tracking and exclusion for one engine."""

    def __init__(self, engine, policy: Optional[HealthPolicy] = None,
                 estimator=None, telemetry=None) -> None:
        self.engine = engine
        self.env = engine.env
        self.metrics = engine.metrics
        self.policy = policy or HealthPolicy()
        self.estimator = estimator if estimator is not None \
            else engine.health_estimator()
        self.blacklist = Blacklist(self.policy)
        self._machine_ids = sorted(
            m.machine_id for m in engine.cluster.machines)
        #: machine_id -> count of verified integrity faults (checksum
        #: mismatches the data service attributed to the machine).
        #: Storage-node ids appear here too; they are never driven
        #: through the engine's exclusion entry points (the data service
        #: handles its own replica placement exclusions).
        self.integrity_suspicions: Dict[int, int] = {}
        datasvc = getattr(engine, "datasvc", None)
        if datasvc is not None:
            datasvc.attach_health(self)
        self._last_counts: Dict[int, int] = {}
        self._missed: set = set()
        self._stopped = False
        self._started = False
        #: Optional :class:`repro.trace.TelemetryRegistry`: the monitor
        #: registers its own gauges and samples the whole registry at
        #: every tick, so the time series it bases decisions on (queue
        #: depths, exclusions) is recorded on the same cadence as the
        #: decisions themselves.
        self.telemetry = telemetry
        if telemetry is not None:
            telemetry.gauge(
                "repro_health_excluded_machines",
                "Machines the health monitor holds excluded or on "
                "probation",
                self.blacklist.excluded_count, engine=engine.name)
            telemetry.gauge(
                "repro_health_heartbeat_misses",
                "Machines currently missing heartbeats (crashed)",
                lambda: len(self._missed), engine=engine.name)

    # -- lifecycle -----------------------------------------------------------------

    def start(self, horizon_s: Optional[float] = None) -> None:
        """Begin ticking; with a horizon the monitor self-terminates so
        a plain ``env.run()`` still drains the event queue."""
        if self._started:
            return
        self._started = True
        self.env.process(self._run(horizon_s))

    def stop(self) -> None:
        """Stop at the next tick boundary (idempotent)."""
        self._stopped = True

    def _run(self, horizon_s: Optional[float]) -> Generator:
        deadline = None if horizon_s is None else self.env.now + horizon_s
        interval = self.policy.interval_s
        while not self._stopped:
            if deadline is not None \
                    and self.env.now + interval > deadline + 1e-9:
                return
            yield self.env.timeout(interval)
            if self._stopped:
                return
            if self.telemetry is not None:
                self.telemetry.sample(self.env.now)
            self._tick()

    # -- one tick ------------------------------------------------------------------

    def _record(self, kind: str, machine_id: int, resource: str = "",
                relative_rate: float = float("nan"),
                detail: str = "") -> None:
        self.metrics.record_health(HealthEventRecord(
            kind=kind, machine_id=machine_id, at=self.env.now,
            resource=resource, relative_rate=relative_rate, detail=detail))

    def report_integrity_fault(self, machine_id: int,
                               detail: str = "") -> None:
        """A verified data fault (checksum mismatch) on ``machine_id``.

        Called by the data service when a read fails verification: the
        fault lands in the health event stream and bumps the machine's
        suspicion counter.  No exclusion is driven from here -- the
        service excludes its own nodes from placement, and compute
        exclusion stays rate-based."""
        self.integrity_suspicions[machine_id] = \
            self.integrity_suspicions.get(machine_id, 0) + 1
        self._record("integrity-fault", machine_id, resource="disk",
                     detail=detail)

    def _tick(self) -> None:
        engine = self.engine
        alive = []
        for machine_id in self._machine_ids:
            if engine.machine_is_dead(machine_id):
                if machine_id not in self._missed:
                    self._missed.add(machine_id)
                    self._record("heartbeat-miss", machine_id)
                continue
            if machine_id in self._missed:
                self._missed.discard(machine_id)
                self._record("heartbeat-restore", machine_id)
            alive.append(machine_id)
        self.estimator.update()
        suspects = self._find_suspects(alive)
        budget = int(self.policy.max_excluded_fraction
                     * len(self._machine_ids))
        for machine_id in alive:
            count = self.estimator.observation_count(machine_id)
            fresh = count > self._last_counts.get(machine_id, 0)
            self._last_counts[machine_id] = count
            unavailable = len(self._missed) + self.blacklist.excluded_count()
            can_exclude = (unavailable + 1 <= budget
                           or self.blacklist.state(machine_id) != "healthy")
            verdict = suspects.get(machine_id)
            actions = self.blacklist.observe(
                machine_id, suspect=verdict is not None, fresh=fresh,
                now=self.env.now, can_exclude=can_exclude)
            resource, relative = verdict if verdict is not None \
                else ("", float("nan"))
            for action in actions:
                if action == "suspect":
                    self._record("suspect", machine_id, resource, relative)
                elif action == "exclude":
                    duplicates = engine.exclude_machine(machine_id)
                    self._record(
                        "exclude", machine_id, resource, relative,
                        detail=f"{duplicates} attempts re-dispatched")
                elif action == "probation":
                    engine.probation_machine(machine_id)
                    self._record("probation", machine_id)
                elif action == "reinstate":
                    engine.reinstate_machine(machine_id)
                    self._record("reinstate", machine_id)

    def _find_suspects(self, alive) -> Dict[int, Tuple[str, float]]:
        """Median test per resource; a machine's worst resource wins.

        Needs at least three comparably observed machines per resource
        -- with fewer there is no meaningful "cluster typical" rate.
        """
        policy = self.policy
        table = self.estimator.table
        suspects: Dict[int, Tuple[str, float]] = {}
        for resource in self.estimator.resources:
            sample = [(m, table.rate(m, resource)) for m in alive
                      if table.count(m, resource) >= policy.min_observations]
            if len(sample) < 3:
                continue
            typical = median(rate for _, rate in sample)
            if not (typical > 0):
                continue
            for machine_id, rate in sample:
                relative = rate / typical
                if relative >= policy.slow_factor:
                    continue
                current = suspects.get(machine_id)
                if current is None or relative < current[1]:
                    suspects[machine_id] = (resource, relative)
        return suspects
