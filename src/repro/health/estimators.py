"""Online per-machine rate estimators: where clarity pays off.

Both engines feed the same monitor, but what they can *observe*
differs, and that difference is the paper's §6.6 contrast played out
online:

* :class:`MonotaskRateEstimator` (MonoSpark) -- every monotask is a
  single-resource operation that reports its own duration, so CPU speed
  (priced seconds per wall second) and disk bandwidth are per-machine
  observables.  For the network it goes one grain finer: the fetch
  monotask times each remote machine's response flow separately
  (:class:`~repro.metrics.events.TransferRecord`), so a slow flow is
  attributed to its *source* NIC as well as its destination -- a fail-
  slow uplink is pinned on the machine that owns it, not on every
  reducer that fetched from it.

* :class:`TaskEwmaEstimator` (Spark) -- tasks use several resources
  behind the OS's back, so all the baseline can measure is task
  wall-clock.  It keeps one blended ``"task"`` rate per machine, which
  both under-detects (a slow NIC is diluted by compute time) and
  misattributes (a reducer on a *healthy* machine fetching from the
  slow one looks slow itself).

Estimators consume the metrics collector's record streams through
cursors, folding each tick's new observations as a batch mean into a
per-``(machine, resource)`` EWMA.  Batch means make the estimate
insensitive to completion order within a tick (slow flows finish last;
a raw per-record EWMA would let one straggling flow swamp a healthy
machine's estimate).  Everything is a deterministic function of the
record streams.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.metrics.collector import MetricsCollector
from repro.metrics.events import CPU, DISK, NETWORK

__all__ = ["MonotaskRateEstimator", "TaskEwmaEstimator", "TASK"]

#: The Spark estimator's only "resource": blended task wall-clock.
TASK = "task"


class _RateTable:
    """Batch-mean EWMA rates keyed by (machine, resource)."""

    def __init__(self, alpha: float) -> None:
        self.alpha = alpha
        self._rates: Dict[Tuple[int, str], float] = {}
        self._counts: Dict[Tuple[int, str], int] = {}
        self._batch: Dict[Tuple[int, str], Tuple[float, int]] = {}

    def observe(self, machine_id: int, resource: str, rate: float) -> None:
        """Add one observation to the current batch."""
        key = (machine_id, resource)
        total, count = self._batch.get(key, (0.0, 0))
        self._batch[key] = (total + rate, count + 1)

    def flush(self) -> None:
        """Fold the batch means into the EWMAs (one tick's worth)."""
        for key in sorted(self._batch):
            total, count = self._batch[key]
            mean = total / count
            old = self._rates.get(key)
            self._rates[key] = mean if old is None else \
                (1.0 - self.alpha) * old + self.alpha * mean
            self._counts[key] = self._counts.get(key, 0) + count
        self._batch.clear()

    def rate(self, machine_id: int, resource: str) -> float:
        return self._rates.get((machine_id, resource), float("nan"))

    def count(self, machine_id: int, resource: str) -> int:
        return self._counts.get((machine_id, resource), 0)

    def machine_count(self, machine_id: int) -> int:
        return sum(n for (m, _), n in self._counts.items()
                   if m == machine_id)


class _StreamCursor:
    """Consumes finished records from an append-only stream in order.

    Records may be appended before they finish (``end`` = NaN); those
    positions stay open and are re-checked on the next update, so
    consumption is a deterministic function of the stream.
    """

    def __init__(self) -> None:
        self._next = 0
        self._open: List[int] = []

    def finished(self, stream: list) -> list:
        records = []
        still_open: List[int] = []
        for pos in self._open + list(range(self._next, len(stream))):
            record = stream[pos]
            if record.end != record.end:  # NaN: still running
                still_open.append(pos)
                continue
            records.append(record)
        self._open = still_open
        self._next = len(stream)
        return records


class MonotaskRateEstimator:
    """Per-resource rates from MonoSpark's self-reported telemetry."""

    resources = (CPU, DISK, NETWORK)
    name = "monotask-rates"

    def __init__(self, metrics: MetricsCollector,
                 alpha: float = 0.5) -> None:
        self.metrics = metrics
        self.table = _RateTable(alpha)
        self._monotasks = _StreamCursor()
        self._transfers = _StreamCursor()

    def update(self) -> None:
        """Fold newly finished monotasks and transfers into the table."""
        for record in self._monotasks.finished(self.metrics.monotasks):
            duration = record.duration
            if duration <= 0:
                continue
            if record.resource == CPU:
                priced = (record.deserialize_s + record.op_s
                          + record.serialize_s)
                if priced > 0:
                    self.table.observe(record.machine_id, CPU,
                                       min(1.0, priced / duration))
            elif record.resource == DISK and record.nbytes > 0:
                self.table.observe(record.machine_id, DISK,
                                   record.nbytes / duration)
            # NETWORK monotasks span several source machines; the
            # per-source TransferRecords below carry the attribution.
        for record in self._transfers.finished(self.metrics.transfers):
            duration = record.duration
            if duration <= 0 or record.nbytes <= 0:
                continue
            rate = record.nbytes / duration
            self.table.observe(record.src_machine_id, NETWORK, rate)
            self.table.observe(record.dst_machine_id, NETWORK, rate)
        self.table.flush()

    def observation_count(self, machine_id: int) -> int:
        """Observations folded for one machine (freshness signal)."""
        return self.table.machine_count(machine_id)


class TaskEwmaEstimator:
    """Blended task-level rate: all the Spark baseline can see.

    Rate is 1 / task wall-clock, per machine.  Heterogeneous task sizes
    make it noisy, and because a Spark task's time includes fetching
    from *other* machines, a fail-slow NIC inflates task durations
    cluster-wide -- the estimator cannot say which machine is sick,
    only that something is slow (and it says so as resource
    ``"task"``).
    """

    resources = (TASK,)
    name = "task-ewma"

    def __init__(self, metrics: MetricsCollector,
                 alpha: float = 0.5) -> None:
        self.metrics = metrics
        self.table = _RateTable(alpha)
        self._tasks = _StreamCursor()

    def update(self) -> None:
        """Fold newly finished tasks into the table."""
        for record in self._tasks.finished(self.metrics.tasks):
            duration = record.duration
            if duration <= 0:
                continue
            self.table.observe(record.machine_id, TASK, 1.0 / duration)
        self.table.flush()

    def observation_count(self, machine_id: int) -> int:
        """Observations folded for one machine (freshness signal)."""
        return self.table.machine_count(machine_id)
