"""CPU model: a pool of cores on one machine.

A compute slice occupies one core for a fixed virtual duration.  Cores are
granted FIFO, which matches both engines' behaviour: Spark runs one task
thread per slot, and MonoSpark's compute scheduler runs one compute
monotask per core.  Busy time is tracked for utilization reporting.
"""

from __future__ import annotations

from typing import Generator, Optional

from repro.errors import SimulationError
from repro.simulator.core import Environment, Event
from repro.simulator.resources import BusyTracker, Semaphore

__all__ = ["CpuPool"]


class CpuPool:
    """``cores`` identical cores with FIFO admission."""

    def __init__(self, env: Environment, cores: int, name: str = "cpu",
                 speed_factor: float = 1.0) -> None:
        if cores < 1:
            raise SimulationError(f"need at least one core: {cores}")
        if speed_factor <= 0:
            raise SimulationError(f"speed factor must be positive")
        self.env = env
        self.cores = cores
        self.name = name
        #: Relative core speed: 1.0 is nominal, 0.5 runs everything at
        #: half speed (hardware degradation / heterogeneity experiments).
        self.speed_factor = speed_factor
        self._sem = Semaphore(env, cores)
        self.tracker = BusyTracker(env, cores, name)
        #: Total core-seconds ever consumed (for accounting tests).
        self.total_busy_s = 0.0

    @property
    def queue_length(self) -> int:
        """Compute slices waiting for a core."""
        return self._sem.queue_length

    @property
    def cores_in_use(self) -> int:
        """Cores currently running a slice."""
        return self._sem.in_use

    def acquire(self) -> Event:
        """Claim a core; the caller must pair this with :meth:`release`."""
        event = self._sem.acquire()
        event.add_callback(lambda _: self.tracker.add(1))
        return event

    def release(self) -> None:
        """Return a core claimed with :meth:`acquire`."""
        self.tracker.remove(1)
        self._sem.release()

    def run(self, duration: float, owner: Optional[object] = None) -> Event:
        """Run a compute slice of ``duration`` seconds on one core.

        Returns an event that fires when the slice finishes.  ``owner`` is
        accepted for symmetry with the disk/network APIs (used by metrics
        wrappers); the pool itself does not interpret it.
        """
        if duration < 0:
            raise SimulationError(f"negative compute duration: {duration}")
        return self.env.process(self._run(duration))

    def _run(self, duration: float) -> Generator:
        yield self.acquire()
        try:
            actual = duration / self.speed_factor
            self.total_busy_s += actual
            yield self.env.timeout(actual)
        finally:
            self.release()
