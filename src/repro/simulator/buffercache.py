"""OS buffer-cache model: write-back caching with background flushing.

This captures the §2.2 point that, in today's frameworks, resource use
happens *outside the control of the framework*: Spark's disk writes land
in the page cache and the OS flushes them later, contending with reads
the framework knows nothing about.  MonoSpark bypasses this model
entirely -- its disk monotasks talk to the :class:`~repro.simulator.disk.
Disk` directly and write through (§3.1), which is also why Spark wins on
write-light queries like Big Data Benchmark 1c unless it too is forced
to write through (§5.3, Figure 5).

Model:

* Writes charge a memcpy into the cache and return once there is space;
  the data becomes *dirty* and a background flusher writes it to the
  owning disk once dirty data exceeds ``dirty_background_bytes`` (or
  writers are blocked on space).
* Reads hit if the block is resident (clean or dirty) and cost a memcpy;
  otherwise they go to disk and the block is inserted clean.
* Clean blocks are evicted LRU under space pressure; dirty blocks pin
  their space until flushed.
"""

from __future__ import annotations

from collections import OrderedDict, deque
from typing import Deque, Dict, Generator, Optional, Tuple

from repro.config import MachineSpec
from repro.errors import FaultError, MachineFailure, SimulationError
from repro.simulator.core import Environment, Event
from repro.simulator.disk import Disk

__all__ = ["BufferCache"]

#: Granularity of background write-back I/O.
FLUSH_CHUNK_BYTES = 32 * 1024 * 1024


class BufferCache:
    """The page cache of one machine, fronting its disks."""

    def __init__(self, env: Environment, spec: MachineSpec,
                 disks: list[Disk], name: str = "cache") -> None:
        self.env = env
        self.name = name
        self.capacity = spec.buffer_cache_bytes
        self.dirty_background = spec.dirty_background_bytes
        self.memcpy_bps = spec.memcpy_bps
        self.disks = disks
        #: block_id -> bytes, in LRU order (oldest first). Clean data only.
        self._clean: "OrderedDict[str, float]" = OrderedDict()
        #: block_id -> (disk_index, bytes) awaiting write-back, FIFO.
        self._dirty: "OrderedDict[str, Tuple[int, float]]" = OrderedDict()
        self.clean_bytes = 0.0
        self.dirty_bytes = 0.0
        self._space_waiters: Deque[Tuple[Event, float]] = deque()
        self._flusher_wake: Optional[Event] = None
        self._flusher_running = False
        self.read_hits = 0
        self.read_misses = 0

    # -- introspection ---------------------------------------------------------

    @property
    def used_bytes(self) -> float:
        """Resident bytes, clean plus dirty."""
        return self.clean_bytes + self.dirty_bytes

    @property
    def free_bytes(self) -> float:
        """Room left in the cache."""
        return self.capacity - self.used_bytes

    def resident(self, block_id: str) -> bool:
        """True if the block is in cache (clean or dirty)."""
        return block_id in self._clean or block_id in self._dirty

    # -- writes ----------------------------------------------------------------

    def write(self, disk_index: int, nbytes: float, block_id: str,
              write_through: bool = False) -> Event:
        """Write ``nbytes`` destined for disk ``disk_index``.

        With ``write_through`` the event fires only after the bytes are on
        the platter (the paper's flushed-Spark configuration, and the
        semantic MonoSpark enforces for itself at the monotask layer).
        Otherwise the event fires once the bytes are dirty in cache.
        """
        self._check_disk(disk_index)
        if nbytes < 0:
            raise SimulationError(f"negative write size: {nbytes}")
        return self.env.process(
            self._write(disk_index, nbytes, block_id, write_through))

    def _write(self, disk_index: int, nbytes: float, block_id: str,
               write_through: bool) -> Generator:
        yield self.env.timeout(nbytes / self.memcpy_bps)
        if nbytes > self.capacity:
            # Larger than the whole cache: cannot be buffered at all.
            write_through = True
        if write_through:
            # Synchronous write-back: pay the disk time now, keep a clean copy.
            yield self.disks[disk_index].write(nbytes, label=block_id)
            self._insert_clean(block_id, nbytes)
            return
        yield from self._wait_for_space(nbytes)
        self.dirty_bytes += nbytes
        if block_id in self._dirty:
            old_disk, old_bytes = self._dirty.pop(block_id)
            self.dirty_bytes -= old_bytes
        self._dirty[block_id] = (disk_index, nbytes)
        self._maybe_start_flusher()

    def _wait_for_space(self, nbytes: float) -> Generator:
        while self.free_bytes < nbytes:
            if not self._evict_clean(nbytes - self.free_bytes):
                # All remaining residency is dirty: wait for the flusher.
                waiter = self.env.event()
                self._space_waiters.append((waiter, nbytes))
                self._maybe_start_flusher(force=True)
                yield waiter
        return

    def _evict_clean(self, want_bytes: float) -> bool:
        """Drop LRU clean blocks until ``want_bytes`` freed; False if stuck."""
        freed = 0.0
        while freed < want_bytes and self._clean:
            block_id, nbytes = self._clean.popitem(last=False)
            self.clean_bytes -= nbytes
            freed += nbytes
        return freed > 0 or want_bytes <= 0

    # -- reads -----------------------------------------------------------------

    def read(self, disk_index: int, nbytes: float, block_id: str) -> Event:
        """Read ``nbytes`` of ``block_id``; hits cost a memcpy, misses go
        to disk (and populate the cache)."""
        self._check_disk(disk_index)
        if nbytes < 0:
            raise SimulationError(f"negative read size: {nbytes}")
        return self.env.process(self._read(disk_index, nbytes, block_id))

    def read_many(self, disk_index: int,
                  blocks: "list[Tuple[str, float]]") -> Event:
        """Read several small blocks as one coalesced disk request.

        Models OS/framework request merging for shuffle-segment reads:
        resident blocks cost a memcpy; all missing blocks are fetched in
        a single sequential disk request (one seek), then cached clean.
        """
        self._check_disk(disk_index)
        return self.env.process(self._read_many(disk_index, blocks))

    def _read_many(self, disk_index: int,
                   blocks: "list[Tuple[str, float]]") -> Generator:
        hit_bytes = 0.0
        missing: list = []
        for block_id, nbytes in blocks:
            if nbytes < 0:
                raise SimulationError(f"negative read size: {nbytes}")
            if block_id in self._clean:
                self._clean.move_to_end(block_id)
                self.read_hits += 1
                hit_bytes += nbytes
            elif block_id in self._dirty:
                self.read_hits += 1
                hit_bytes += nbytes
            else:
                self.read_misses += 1
                missing.append((block_id, nbytes))
        if hit_bytes > 0:
            yield self.env.timeout(hit_bytes / self.memcpy_bps)
        if missing:
            total = sum(nbytes for _, nbytes in missing)
            yield self.disks[disk_index].read(total, label=missing[0][0])
            for block_id, nbytes in missing:
                self._insert_clean(block_id, nbytes)

    def _read(self, disk_index: int, nbytes: float, block_id: str) -> Generator:
        if block_id in self._clean:
            self._clean.move_to_end(block_id)
            self.read_hits += 1
            yield self.env.timeout(nbytes / self.memcpy_bps)
            return
        if block_id in self._dirty:
            self.read_hits += 1
            yield self.env.timeout(nbytes / self.memcpy_bps)
            return
        self.read_misses += 1
        yield self.disks[disk_index].read(nbytes, label=block_id)
        self._insert_clean(block_id, nbytes)

    def _insert_clean(self, block_id: str, nbytes: float) -> None:
        if block_id in self._dirty:
            return  # Dirty copy is authoritative.
        if block_id in self._clean:
            self.clean_bytes -= self._clean.pop(block_id)
        overflow = nbytes - self.free_bytes
        if overflow > 0:
            self._evict_clean(overflow)
        if nbytes <= self.free_bytes:
            self._clean[block_id] = nbytes
            self.clean_bytes += nbytes

    # -- background flusher ------------------------------------------------------

    def _maybe_start_flusher(self, force: bool = False) -> None:
        over_threshold = self.dirty_bytes > self.dirty_background
        if (over_threshold or force) and not self._flusher_running:
            self._flusher_running = True
            self.env.process(self._flush_loop())

    def sync(self) -> Event:
        """Flush all dirty data to disk (used by tests and fair teardowns)."""
        return self.env.process(self._sync())

    def _sync(self) -> Generator:
        self._maybe_start_flusher(force=True)
        while self.dirty_bytes > 0:
            waiter = self.env.event()
            self._space_waiters.append((waiter, float("inf")))
            yield waiter

    def _flush_loop(self) -> Generator:
        try:
            while self._dirty:
                block_id, (disk_index, nbytes) = next(iter(self._dirty.items()))
                self._dirty.pop(block_id)
                remaining = nbytes
                while remaining > 0:
                    chunk = min(FLUSH_CHUNK_BYTES, remaining)
                    try:
                        yield self.disks[disk_index].write(chunk,
                                                           label=block_id)
                    except FaultError:
                        # The disk died under us: this machine's dirty data
                        # is gone with it; crash() settles the accounting.
                        return
                    remaining -= chunk
                    self.dirty_bytes -= chunk
                    self._wake_space_waiters()
                self._insert_clean(block_id, nbytes)
                # Keep flushing while over threshold or someone needs space;
                # otherwise stop and let dirty data age in cache.
                if (self.dirty_bytes <= self.dirty_background
                        and not self._space_waiters):
                    break
        finally:
            self._flusher_running = False
            self._wake_space_waiters()

    def crash(self) -> int:
        """Drop all cached state (machine crash); fail blocked writers.

        Returns the number of space waiters failed.  The flusher, if one
        is mid-write, bails out on the failed disk request.
        """
        self._clean.clear()
        self._dirty.clear()
        self.clean_bytes = 0.0
        self.dirty_bytes = 0.0
        waiters = list(self._space_waiters)
        self._space_waiters.clear()
        for waiter, _ in waiters:
            if not waiter.triggered:
                waiter.fail(MachineFailure(f"{self.name}: machine crashed"))
        return len(waiters)

    def _wake_space_waiters(self) -> None:
        still_waiting: Deque[Tuple[Event, float]] = deque()
        while self._space_waiters:
            waiter, nbytes = self._space_waiters.popleft()
            sync_waiter = nbytes == float("inf")
            if sync_waiter and self.dirty_bytes <= 0:
                waiter.succeed()
            elif not sync_waiter and (self.free_bytes >= nbytes
                                      or self._clean):
                waiter.succeed()
            else:
                still_waiting.append((waiter, nbytes))
        self._space_waiters = still_waiting
        if still_waiting:
            self._maybe_start_flusher(force=True)

    def _check_disk(self, disk_index: int) -> None:
        if not 0 <= disk_index < len(self.disks):
            raise SimulationError(f"no such disk: {disk_index}")
