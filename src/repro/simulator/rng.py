"""Deterministic random-number streams.

Every stochastic component in the simulator draws from its own named
stream, derived from a single root seed.  This keeps simulations
reproducible even when components are added or reordered: a component's
stream depends only on the root seed and its own name.
"""

from __future__ import annotations

import hashlib
import random
from typing import Dict

__all__ = ["RngStreams"]


class RngStreams:
    """A factory of independent, named ``random.Random`` streams."""

    def __init__(self, seed: int = 0) -> None:
        self.seed = int(seed)
        self._streams: Dict[str, random.Random] = {}

    def stream(self, name: str) -> random.Random:
        """Return the stream for ``name``, creating it on first use.

        The same ``(seed, name)`` pair always yields an identical stream.
        """
        existing = self._streams.get(name)
        if existing is not None:
            return existing
        digest = hashlib.sha256(f"{self.seed}:{name}".encode()).digest()
        stream = random.Random(int.from_bytes(digest[:8], "big"))
        self._streams[name] = stream
        return stream

    def fork(self, name: str) -> "RngStreams":
        """Derive a child factory whose streams are independent of ours."""
        digest = hashlib.sha256(f"{self.seed}/{name}".encode()).digest()
        return RngStreams(int.from_bytes(digest[:8], "big"))
