"""Flow-level network fabric with max-min fair bandwidth sharing.

Machines attach to a non-blocking core fabric through full-duplex NICs,
so the only capacity constraints are each machine's uplink and downlink.
Active flows receive their max-min fair rates (computed by water-filling
over the link constraints); whenever a flow starts or finishes, progress
is banked at the old rates and rates are recomputed.

This is the standard flow-level approximation used by cluster
simulators: it captures exactly the effect the paper cares about --
transfers from one machine contending with other flows from the same
sender or to the same receiver (§3.3).
"""

from __future__ import annotations

from typing import Dict, Generator, List, Optional, Set, Tuple

from repro.errors import (Interrupted, LinkPartitionError, MachineFailure,
                          SimulationError)
from repro.simulator.core import Environment, Event, Process
from repro.simulator.resources import BusyTracker

__all__ = ["Network", "Flow"]

#: One-way latency charged at flow start (connection + first byte).
FLOW_LATENCY_S = 0.0005


class Flow:
    """An active transfer of ``nbytes`` from ``src`` to ``dst``."""

    __slots__ = ("src", "dst", "nbytes", "remaining", "rate", "last_update",
                 "done", "label", "started_at")

    def __init__(self, env: Environment, src: int, dst: int, nbytes: float,
                 label: str = "") -> None:
        self.src = src
        self.dst = dst
        self.nbytes = float(nbytes)
        self.remaining = float(nbytes)
        self.rate = 0.0
        self.last_update = env.now
        self.started_at = env.now
        self.done: Event = env.event()
        self.label = label


class Network:
    """The cluster fabric: per-machine up/down links, max-min fair flows."""

    def __init__(self, env: Environment) -> None:
        self.env = env
        self._up_bps: Dict[int, float] = {}
        self._down_bps: Dict[int, float] = {}
        self._flows: List[Flow] = []
        #: One persistent waiter process re-armed on every rebalance, so
        #: flow churn does not leave superseded waiters in the event heap.
        self._waiter: Optional[Process] = None
        self._wake_at: float = float("inf")
        self._machine_up: Dict[int, bool] = {}
        #: Gray-failure state: multiplicative NIC speed factors (1.0 =
        #: healthy, 0.1 = 10% speed) and directed src->dst partitions.
        self._up_factor: Dict[int, float] = {}
        self._down_factor: Dict[int, float] = {}
        self._partitions: Set[Tuple[int, int]] = set()
        self.bytes_transferred = 0.0
        #: (completion time, bytes, dst, src) per flow -- machine-level
        #: observation used by the Spark-based models (§6.6).
        self.completion_log: List[tuple] = []
        #: Per-machine receive-side busy trackers (1 unit = link saturated
        #: is approximated as "any flow active"); used for utilization plots.
        self.rx_trackers: Dict[int, BusyTracker] = {}
        self.tx_trackers: Dict[int, BusyTracker] = {}

    def register_machine(self, machine_id: int, up_bps: float,
                         down_bps: float) -> None:
        """Attach a machine's NIC to the fabric."""
        if up_bps <= 0 or down_bps <= 0:
            raise SimulationError("link bandwidth must be positive")
        if machine_id in self._up_bps:
            raise SimulationError(f"machine {machine_id} already registered")
        self._up_bps[machine_id] = up_bps
        self._down_bps[machine_id] = down_bps
        self._machine_up[machine_id] = True
        self._up_factor[machine_id] = 1.0
        self._down_factor[machine_id] = 1.0
        self.rx_trackers[machine_id] = BusyTracker(
            self.env, 1, f"net-rx-{machine_id}")
        self.tx_trackers[machine_id] = BusyTracker(
            self.env, 1, f"net-tx-{machine_id}")

    def down_bps(self, machine_id: int) -> float:
        """A machine's downlink capacity."""
        return self._down_bps[machine_id]

    def up_bps(self, machine_id: int) -> float:
        """A machine's uplink capacity."""
        return self._up_bps[machine_id]

    @property
    def active_flows(self) -> int:
        """Flows currently in the air."""
        return len(self._flows)

    def transfer(self, src: int, dst: int, nbytes: float,
                 label: str = "") -> Event:
        """Start a flow; the returned event fires when the last byte lands."""
        if src not in self._up_bps or dst not in self._down_bps:
            raise SimulationError(f"unregistered machine in flow {src}->{dst}")
        flow = Flow(self.env, src, dst, nbytes, label)
        if not (self._machine_up[src] and self._machine_up[dst]):
            flow.done.fail(MachineFailure(
                f"flow {src}->{dst}: endpoint is down"))
            return flow.done
        if src != dst and (src, dst) in self._partitions:
            flow.done.fail(LinkPartitionError(
                f"flow {src}->{dst}: link partitioned"))
            return flow.done
        self.bytes_transferred += flow.nbytes
        if nbytes <= 0 or src == dst:
            # Local or empty: completes after the fixed latency only.
            self.env.process(self._deliver([flow]))
            return flow.done
        self._flows.append(flow)
        self._rebalance()
        return flow.done

    def _deliver(self, finished: List[Flow]) -> Generator:
        """Charge the one-way latency, then complete the flows.

        Remote flows pay it on top of their bandwidth time (connection
        setup plus propagation of the last byte); local/empty transfers
        pay only the latency.
        """
        yield self.env.timeout(FLOW_LATENCY_S)
        for flow in finished:
            if flow.done.triggered:
                continue  # Failed by a machine crash while in delivery.
            self.completion_log.append(
                (self.env.now, flow.nbytes, flow.dst, flow.src))
            flow.done.succeed(flow)

    # -- max-min fair rate allocation -----------------------------------------

    def _compute_rates(self) -> None:
        """Water-filling: repeatedly freeze the most-constrained link.

        Incremental bookkeeping (per-link flow lists, counts, and caps
        updated as flows freeze) keeps each recompute at
        O(flows + links^2) rather than O(links * flows).
        """
        flows = self._flows
        if not flows:
            return
        # Link keys: uplink = machine_id, downlink = ~machine_id (bit
        # complement keeps them distinct ints -- cheaper than tuples).
        by_link: Dict[int, List[Flow]] = {}
        count: Dict[int, int] = {}
        cap: Dict[int, float] = {}
        for flow in flows:
            flow.rate = -1.0  # pending marker
            up, down = flow.src, ~flow.dst
            entry = by_link.get(up)
            if entry is None:
                by_link[up] = [flow]
                count[up] = 1
                cap[up] = self._up_bps[flow.src] * self._up_factor[flow.src]
            else:
                entry.append(flow)
                count[up] += 1
            entry = by_link.get(down)
            if entry is None:
                by_link[down] = [flow]
                count[down] = 1
                cap[down] = (self._down_bps[flow.dst]
                             * self._down_factor[flow.dst])
            else:
                entry.append(flow)
                count[down] += 1
        while count:
            best_link = min(count, key=lambda l: cap[l] / count[l])
            share = cap[best_link] / count[best_link]
            if share < 1e-6:
                share = 1e-6
            for flow in by_link[best_link]:
                if flow.rate >= 0.0:
                    continue
                flow.rate = share
                for link in (flow.src, ~flow.dst):
                    if link == best_link:
                        continue
                    remaining = count.get(link)
                    if remaining is None:
                        continue
                    if remaining == 1:
                        del count[link]
                        del cap[link]
                    else:
                        count[link] = remaining - 1
                        cap[link] -= share
            del count[best_link]
            del cap[best_link]

    def _bank_progress(self) -> None:
        now = self.env.now
        for flow in self._flows:
            elapsed = now - flow.last_update
            if elapsed > 0 and flow.rate > 0:
                flow.remaining = max(0.0, flow.remaining - flow.rate * elapsed)
            flow.last_update = now

    def _update_trackers(self) -> None:
        rx_active = {m: 0 for m in self._down_bps}
        tx_active = {m: 0 for m in self._up_bps}
        for flow in self._flows:
            rx_active[flow.dst] = 1
            tx_active[flow.src] = 1
        for machine, busy in rx_active.items():
            tracker = self.rx_trackers[machine]
            if tracker.busy != busy:
                tracker.set_busy(busy)
        for machine, busy in tx_active.items():
            tracker = self.tx_trackers[machine]
            if tracker.busy != busy:
                tracker.set_busy(busy)

    def _rebalance(self) -> None:
        self._bank_progress()
        self._compute_rates()
        self._update_trackers()
        self._arm()

    def _next_deadline(self) -> float:
        return self.env.now + min(
            f.remaining / max(f.rate, 1e-12) for f in self._flows)

    def _arm(self) -> None:
        """(Re)aim the single waiter at the soonest-finishing flow.

        The waiter is only interrupted when the deadline moved *earlier*;
        a later deadline is discovered by the waiter itself when it wakes
        and finds nothing finished.  Either way there is exactly one
        waiter and at most one pending wakeup -- flow churn cannot pile
        superseded events into the heap.
        """
        if not self._flows:
            self._wake_at = float("inf")
            return
        wake_at = self._next_deadline()
        if self._waiter is None or not self._waiter.is_alive:
            self._wake_at = wake_at
            self._waiter = self.env.process(self._completion_loop())
        elif wake_at < self._wake_at:
            self._wake_at = wake_at
            self._waiter.interrupt(cause="rearm")

    def _completion_loop(self) -> Generator:
        while self._flows:
            delay = self._wake_at - self.env.now
            if delay > 0:
                try:
                    yield self.env.timeout(delay)
                except Interrupted:
                    continue  # Re-armed at an earlier deadline.
                if not self._flows:
                    break  # All in-flight flows failed while we slept.
            self._bank_progress()
            finished = [f for f in self._flows if f.remaining <= 1e-6]
            if not finished:
                soonest = self._next_deadline() - self.env.now
                if soonest >= 1e-9:
                    # Rates dropped since we armed (new flows joined):
                    # this wakeup is early, not late.  Sleep again.
                    self._wake_at = self.env.now + soonest
                    continue
                # Float slack: force the closest flow to completion.
                closest = min(self._flows, key=lambda f: f.remaining)
                closest.remaining = 0.0
                finished = [closest]
            for flow in finished:
                self._flows.remove(flow)
            self._compute_rates()
            self._update_trackers()
            if self._flows:
                self._wake_at = self._next_deadline()
            self.env.process(self._deliver(finished))

    # -- fault injection --------------------------------------------------------

    def set_machine_up(self, machine_id: int, up: bool) -> None:
        """Mark a machine up or down; transfers touching a down machine
        fail immediately."""
        if machine_id not in self._machine_up:
            raise SimulationError(f"unregistered machine {machine_id}")
        self._machine_up[machine_id] = up

    def fail_machine(self, machine_id: int) -> int:
        """Fail every in-flight flow from or to ``machine_id``.

        Returns the number of flows killed.  Survivors are re-balanced
        over the freed bandwidth.
        """
        self._bank_progress()
        dead = [f for f in self._flows
                if f.src == machine_id or f.dst == machine_id]
        for flow in dead:
            self._flows.remove(flow)
        self._compute_rates()
        self._update_trackers()
        self._arm()
        for flow in dead:
            flow.done.fail(MachineFailure(
                f"flow {flow.src}->{flow.dst}: machine {machine_id} failed"))
        return len(dead)

    def degrade_link(self, machine_id: int, up_factor: float = 1.0,
                     down_factor: float = 1.0) -> None:
        """Scale a machine's NIC to a fraction of nominal speed.

        Factors are relative speeds in (0, 1]; 1.0 restores full speed.
        In-flight flows are re-balanced at the new capacities.
        """
        if machine_id not in self._machine_up:
            raise SimulationError(f"unregistered machine {machine_id}")
        if not (0.0 < up_factor <= 1.0) or not (0.0 < down_factor <= 1.0):
            raise SimulationError(
                f"link factors must be in (0, 1]: {up_factor}, {down_factor}")
        self._up_factor[machine_id] = up_factor
        self._down_factor[machine_id] = down_factor
        if self._flows:
            self._rebalance()

    def restore_link(self, machine_id: int) -> None:
        """Return a degraded NIC to full speed."""
        self.degrade_link(machine_id, up_factor=1.0, down_factor=1.0)

    def partition_link(self, src: int, dst: int) -> int:
        """Block the directed path ``src -> dst``.

        In-flight flows on the path fail with
        :class:`~repro.errors.LinkPartitionError` and new transfers fail
        fast, so callers back off and retry instead of hanging.  Returns
        the number of flows killed.
        """
        for machine_id in (src, dst):
            if machine_id not in self._machine_up:
                raise SimulationError(f"unregistered machine {machine_id}")
        self._partitions.add((src, dst))
        self._bank_progress()
        dead = [f for f in self._flows if f.src == src and f.dst == dst]
        for flow in dead:
            self._flows.remove(flow)
        self._compute_rates()
        self._update_trackers()
        self._arm()
        for flow in dead:
            flow.done.fail(LinkPartitionError(
                f"flow {flow.src}->{flow.dst}: link partitioned"))
        return len(dead)

    def heal_link(self, src: int, dst: int) -> None:
        """Remove a partition; subsequent transfers flow normally."""
        self._partitions.discard((src, dst))

    def is_partitioned(self, src: int, dst: int) -> bool:
        """Whether the directed path ``src -> dst`` is blocked."""
        return (src, dst) in self._partitions

    # -- introspection for the performance model -------------------------------

    def rates_snapshot(self) -> Dict[str, float]:
        """Current per-flow rates, keyed by label (for tests/debugging)."""
        self._bank_progress()
        self._compute_rates()
        return {f.label or f"{f.src}->{f.dst}": f.rate for f in self._flows}
