"""A minimal discrete-event simulation kernel.

This module implements the event loop that every other part of the library
runs on: a monotonically advancing virtual clock, a priority queue of
pending events, and generator-based processes in the style of SimPy.

Only the features the frameworks need are implemented, which keeps the
kernel small enough to reason about and test exhaustively:

* :class:`Environment` -- the clock and event queue.
* :class:`Event` -- a one-shot occurrence that callbacks can wait on.
* :class:`Timeout` -- an event that fires after a virtual delay.
* :class:`Process` -- a generator that yields events; it resumes when the
  yielded event fires and is itself an event that fires when the generator
  returns.
* :class:`AllOf` / :class:`AnyOf` -- barrier and race combinators.

Determinism: events scheduled for the same time fire in scheduling order
(a monotone sequence number breaks ties), so a simulation is a pure
function of its inputs and seeds.
"""

from __future__ import annotations

import heapq
from itertools import count
from typing import Any, Callable, Generator, Iterable, Optional

from repro.errors import EmptySchedule, Interrupted, SimulationError, StopSimulation

__all__ = [
    "Environment",
    "Event",
    "Timeout",
    "Process",
    "AllOf",
    "AnyOf",
]

_PENDING = object()


def _defuse_if_failed(event: "Event") -> None:
    """Callback that absorbs a failure nobody is waiting for anymore."""
    if not event._ok:
        event.defused = True


class Event:
    """A one-shot occurrence on an :class:`Environment`.

    An event starts *pending*, becomes *triggered* when :meth:`succeed` or
    :meth:`fail` is called (at which point it is placed on the event
    queue), and *processed* once the environment has run its callbacks.
    """

    def __init__(self, env: "Environment") -> None:
        self.env = env
        self.callbacks: Optional[list[Callable[["Event"], None]]] = []
        self._value: Any = _PENDING
        self._ok: bool = True
        #: Set to True by a waiting process to mark a failure as handled.
        self.defused = False

    @property
    def triggered(self) -> bool:
        """True once succeed()/fail() has been called."""
        return self._value is not _PENDING

    @property
    def processed(self) -> bool:
        """True once the environment has run the callbacks."""
        return self.callbacks is None

    @property
    def ok(self) -> bool:
        """True if the event succeeded (raises while still pending)."""
        if not self.triggered:
            raise SimulationError("value of a pending event is not available")
        return self._ok

    @property
    def value(self) -> Any:
        """The event's result (raises while still pending)."""
        if self._value is _PENDING:
            raise SimulationError("value of a pending event is not available")
        return self._value

    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully with ``value``."""
        if self.triggered:
            raise SimulationError(f"{self!r} has already been triggered")
        self._ok = True
        self._value = value
        self.env._enqueue(self)
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Trigger the event with an exception.

        A failed event propagates the exception into every process waiting
        on it, unless a callback defuses it first.
        """
        if self.triggered:
            raise SimulationError(f"{self!r} has already been triggered")
        if not isinstance(exception, BaseException):
            raise TypeError(f"{exception!r} is not an exception")
        self._ok = False
        self._value = exception
        self.env._enqueue(self)
        return self

    def add_callback(self, callback: Callable[["Event"], None]) -> None:
        """Run ``callback(self)`` when the event is processed.

        If the event has already been processed the callback runs
        immediately, which makes waiting on completed events safe.
        """
        if self.callbacks is None:
            callback(self)
        else:
            self.callbacks.append(callback)

    def __repr__(self) -> str:
        state = "processed" if self.processed else (
            "triggered" if self.triggered else "pending")
        return f"<{type(self).__name__} {state} at {id(self):#x}>"


class Timeout(Event):
    """An event that fires ``delay`` time units after creation."""

    def __init__(self, env: "Environment", delay: float, value: Any = None) -> None:
        # `not (delay >= 0)` also catches NaN, whose comparisons are all
        # False; inf would enqueue an event that can never fire and hang
        # run() forever, so both are structural errors.
        if not (delay >= 0) or delay == float("inf"):
            raise SimulationError(f"invalid timeout delay: {delay}")
        super().__init__(env)
        self.delay = delay
        self._ok = True
        self._value = value
        env._enqueue(self, delay=delay)


class Initialize(Event):
    """Internal event used to start a freshly created process."""

    def __init__(self, env: "Environment", process: "Process") -> None:
        super().__init__(env)
        self._ok = True
        self._value = None
        self.callbacks.append(process._resume)
        env._enqueue(self)


class Interruption(Event):
    """Internal event that throws :class:`Interrupted` into a process."""

    def __init__(self, process: "Process", cause: Any) -> None:
        super().__init__(process.env)
        if process.triggered:
            raise SimulationError("cannot interrupt a completed process")
        if process is self.env.active_process:
            raise SimulationError("a process cannot interrupt itself")
        self._ok = False
        self._value = Interrupted(cause)
        self.defused = True
        self.callbacks.append(process._resume_interrupt)
        self.env._enqueue(self)


class Process(Event):
    """Wraps a generator so it can drive, and be awaited as, an event.

    The generator yields :class:`Event` instances.  Each time a yielded
    event fires, the generator resumes with the event's value (or the
    event's exception is thrown into it).  When the generator returns, the
    process event succeeds with the return value; an uncaught exception
    fails the process event.
    """

    def __init__(self, env: "Environment", generator: Generator) -> None:
        if not hasattr(generator, "send") or not hasattr(generator, "throw"):
            raise SimulationError(f"{generator!r} is not a generator")
        super().__init__(env)
        self._generator = generator
        self._target: Optional[Event] = None
        Initialize(env, self)

    @property
    def is_alive(self) -> bool:
        """True while the wrapped generator has not finished."""
        return not self.triggered

    @property
    def target(self) -> Optional[Event]:
        """The event this process is currently waiting on, if any."""
        return self._target

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupted` into the process at the current time."""
        Interruption(self, cause)

    def _resume_interrupt(self, event: Event) -> None:
        if self.triggered:
            return  # Completed before the interruption was delivered.
        # Detach from whatever the process was waiting on: the interrupt
        # supersedes it, and the stale wakeup must not resume us later.
        if self._target is not None and self._target.callbacks is not None:
            try:
                self._target.callbacks.remove(self._resume)
            except ValueError:
                pass
            else:
                # If the abandoned target later *fails*, nobody is left to
                # handle it; defuse so the stale failure cannot crash the
                # run (this is what makes killing speculative attempts and
                # crashed-machine work safe).
                self._target.add_callback(_defuse_if_failed)
        self._resume(event)

    def _resume(self, event: Event) -> None:
        self.env._active_process = self
        while True:
            if event._ok:
                try:
                    next_target = self._generator.send(event._value)
                except StopIteration as exc:
                    self._finish_ok(exc.value)
                    break
                except BaseException as exc:
                    self._finish_fail(exc)
                    break
            else:
                event.defused = True
                try:
                    next_target = self._generator.throw(event._value)
                except StopIteration as exc:
                    self._finish_ok(exc.value)
                    break
                except BaseException as exc:
                    self._finish_fail(exc)
                    break

            if not isinstance(next_target, Event):
                exc = SimulationError(
                    f"process yielded a non-event: {next_target!r}")
                event = Event(self.env)
                event._ok = False
                event._value = exc
                continue
            if next_target.processed:
                # Already done: loop around immediately with its outcome.
                event = next_target
                continue
            self._target = next_target
            next_target.add_callback(self._resume)
            break
        self.env._active_process = None

    def _finish_ok(self, value: Any) -> None:
        self._target = None
        self._ok = True
        self._value = value
        self.env._enqueue(self)

    def _finish_fail(self, exc: BaseException) -> None:
        self._target = None
        self._ok = False
        self._value = exc
        self.env._enqueue(self)


class _Condition(Event):
    """Shared machinery for :class:`AllOf` and :class:`AnyOf`."""

    def __init__(self, env: "Environment", events: Iterable[Event]) -> None:
        super().__init__(env)
        self.events = list(events)
        for event in self.events:
            if event.env is not env:
                raise SimulationError("events belong to different environments")
        self._remaining = len(self.events)
        if not self.events:
            self._ok = True
            self._value = []
            env._enqueue(self)
            return
        for event in self.events:
            event.add_callback(self._check)

    def _check(self, event: Event) -> None:
        raise NotImplementedError


class AllOf(_Condition):
    """Succeeds when every event has succeeded; fails fast on any failure."""

    def _check(self, event: Event) -> None:
        if self.triggered:
            # Already failed fast (or a waiter was interrupted away): a
            # late failure among the remaining events has no handler left.
            if not event._ok:
                event.defused = True
            return
        if not event._ok:
            event.defused = True
            self.fail(event._value)
            return
        self._remaining -= 1
        if self._remaining == 0:
            self.succeed([e._value for e in self.events])


class AnyOf(_Condition):
    """Succeeds (or fails) with the outcome of the first event to fire."""

    def _check(self, event: Event) -> None:
        if self.triggered:
            # The race is settled; losers that fail late have no handler.
            if not event._ok:
                event.defused = True
            return
        if event._ok:
            self.succeed(event._value)
        else:
            event.defused = True
            self.fail(event._value)


class Environment:
    """The discrete-event simulation clock and event queue."""

    def __init__(self, initial_time: float = 0.0) -> None:
        self._now = float(initial_time)
        self._queue: list[tuple[float, int, Event]] = []
        self._seq = count()
        self._active_process: Optional[Process] = None
        #: Total events ever enqueued -- regression guard for code that
        #: used to leak superseded waiter processes into the heap.
        self.events_scheduled = 0

    @property
    def now(self) -> float:
        """The current virtual time."""
        return self._now

    @property
    def queue_size(self) -> int:
        """Events currently scheduled (triggered but not yet processed)."""
        return len(self._queue)

    @property
    def active_process(self) -> Optional[Process]:
        """The process currently being resumed, if any."""
        return self._active_process

    # -- event construction -------------------------------------------------

    def event(self) -> Event:
        """Create a fresh, untriggered event."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """An event that fires ``delay`` seconds from now."""
        return Timeout(self, delay, value)

    def process(self, generator: Generator) -> Process:
        """Start a process driving ``generator``."""
        return Process(self, generator)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        """Barrier: fires when every event has fired (fails fast)."""
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        """Race: fires with the first event's outcome."""
        return AnyOf(self, events)

    # -- scheduling ---------------------------------------------------------

    def _enqueue(self, event: Event, delay: float = 0.0) -> None:
        self.events_scheduled += 1
        heapq.heappush(self._queue, (self._now + delay, next(self._seq), event))

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` if none."""
        return self._queue[0][0] if self._queue else float("inf")

    def step(self) -> None:
        """Process the single next event."""
        if not self._queue:
            raise EmptySchedule("no scheduled events")
        when, _, event = heapq.heappop(self._queue)
        self._now = when
        callbacks = event.callbacks
        event.callbacks = None
        for callback in callbacks:
            callback(event)
        if not event._ok and not event.defused:
            raise event._value

    def run(self, until: "Event | float | None" = None) -> Any:
        """Run the simulation.

        ``until`` may be ``None`` (run until the queue drains), a number
        (run until the clock reaches that time), or an :class:`Event` (run
        until it fires, returning its value).
        """
        stop_value: Any = None
        if isinstance(until, Event):
            if until.processed:
                return until.value

            def _stop(event: Event) -> None:
                raise StopSimulation(event)

            until.add_callback(_stop)
            deadline = float("inf")
        elif until is None:
            deadline = float("inf")
        else:
            deadline = float(until)
            if deadline < self._now:
                raise SimulationError(
                    f"until={deadline} is in the past (now={self._now})")

        try:
            while self._queue and self.peek() <= deadline:
                self.step()
        except StopSimulation as stop:
            event = stop.value
            if not event._ok:
                raise event._value
            return event._value
        if deadline != float("inf"):
            self._now = deadline
        if isinstance(until, Event) and not until.processed:
            raise SimulationError("run() ended before the awaited event fired")
        return stop_value
