"""A minimal discrete-event simulation kernel.

This module implements the event loop that every other part of the library
runs on: a monotonically advancing virtual clock, a priority queue of
pending events, and generator-based processes in the style of SimPy.

Only the features the frameworks need are implemented, which keeps the
kernel small enough to reason about and test exhaustively:

* :class:`Environment` -- the clock and event queue.
* :class:`Event` -- a one-shot occurrence that callbacks can wait on.
* :class:`Timeout` -- an event that fires after a virtual delay.
* :class:`Process` -- a generator that yields events; it resumes when the
  yielded event fires and is itself an event that fires when the generator
  returns.
* :class:`AllOf` / :class:`AnyOf` -- barrier and race combinators.

Determinism: events scheduled for the same time fire in scheduling order
(a monotone sequence number breaks ties), so a simulation is a pure
function of its inputs and seeds.
"""

from __future__ import annotations

from collections import deque
from heapq import heappop, heappush
from typing import Any, Callable, Generator, Iterable, Optional

from repro.errors import EmptySchedule, Interrupted, SimulationError, StopSimulation

__all__ = [
    "Environment",
    "Event",
    "Timeout",
    "Process",
    "AllOf",
    "AnyOf",
]

_PENDING = object()


def _defuse_if_failed(event: "Event") -> None:
    """Callback that absorbs a failure nobody is waiting for anymore."""
    if not event._ok:
        event.defused = True


class Event:
    """A one-shot occurrence on an :class:`Environment`.

    An event starts *pending*, becomes *triggered* when :meth:`succeed` or
    :meth:`fail` is called (at which point it is placed on the event
    queue), and *processed* once the environment has run its callbacks.
    """

    __slots__ = ("env", "callbacks", "_value", "_ok", "defused")

    def __init__(self, env: "Environment") -> None:
        self.env = env
        self.callbacks: Optional[list[Callable[["Event"], None]]] = []
        self._value: Any = _PENDING
        self._ok: bool = True
        #: Set to True by a waiting process to mark a failure as handled.
        self.defused = False

    @property
    def triggered(self) -> bool:
        """True once succeed()/fail() has been called."""
        return self._value is not _PENDING

    @property
    def processed(self) -> bool:
        """True once the environment has run the callbacks."""
        return self.callbacks is None

    @property
    def ok(self) -> bool:
        """True if the event succeeded (raises while still pending)."""
        if not self.triggered:
            raise SimulationError("value of a pending event is not available")
        return self._ok

    @property
    def value(self) -> Any:
        """The event's result (raises while still pending)."""
        if self._value is _PENDING:
            raise SimulationError("value of a pending event is not available")
        return self._value

    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully with ``value``."""
        if self._value is not _PENDING:
            raise SimulationError(f"{self!r} has already been triggered")
        self._ok = True
        self._value = value
        self.env._enqueue(self)
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Trigger the event with an exception.

        A failed event propagates the exception into every process waiting
        on it, unless a callback defuses it first.
        """
        if self._value is not _PENDING:
            raise SimulationError(f"{self!r} has already been triggered")
        if not isinstance(exception, BaseException):
            raise TypeError(f"{exception!r} is not an exception")
        self._ok = False
        self._value = exception
        self.env._enqueue(self)
        return self

    def add_callback(self, callback: Callable[["Event"], None]) -> None:
        """Run ``callback(self)`` when the event is processed.

        If the event has already been processed the callback runs
        immediately, which makes waiting on completed events safe.
        """
        if self.callbacks is None:
            callback(self)
        else:
            self.callbacks.append(callback)

    def __repr__(self) -> str:
        state = "processed" if self.processed else (
            "triggered" if self.triggered else "pending")
        return f"<{type(self).__name__} {state} at {id(self):#x}>"


_INF = float("inf")


class Timeout(Event):
    """An event that fires ``delay`` time units after creation.

    Field assignment is inlined (no ``super().__init__``): one Timeout
    is created per scheduled wakeup, which makes this one of the hottest
    constructors in the simulator.
    """

    __slots__ = ("delay",)

    def __init__(self, env: "Environment", delay: float, value: Any = None) -> None:
        # `not (delay >= 0)` also catches NaN, whose comparisons are all
        # False; inf would enqueue an event that can never fire and hang
        # run() forever, so both are structural errors.
        if not (delay >= 0) or delay == _INF:
            raise SimulationError(f"invalid timeout delay: {delay}")
        self.env = env
        self.callbacks = []
        self._value = value
        self._ok = True
        self.defused = False
        self.delay = delay
        env._enqueue(self, delay=delay)


class Initialize(Event):
    """Internal event used to start a freshly created process."""

    __slots__ = ()

    def __init__(self, env: "Environment", process: "Process") -> None:
        self.env = env
        self.callbacks = [process._resume]
        self._value = None
        self._ok = True
        self.defused = False
        env._enqueue(self)


class Interruption(Event):
    """Internal event that throws :class:`Interrupted` into a process."""

    __slots__ = ()

    def __init__(self, process: "Process", cause: Any) -> None:
        super().__init__(process.env)
        if process.triggered:
            raise SimulationError("cannot interrupt a completed process")
        if process is self.env.active_process:
            raise SimulationError("a process cannot interrupt itself")
        self._ok = False
        self._value = Interrupted(cause)
        self.defused = True
        self.callbacks.append(process._resume_interrupt)
        self.env._enqueue(self)


class Process(Event):
    """Wraps a generator so it can drive, and be awaited as, an event.

    The generator yields :class:`Event` instances.  Each time a yielded
    event fires, the generator resumes with the event's value (or the
    event's exception is thrown into it).  When the generator returns, the
    process event succeeds with the return value; an uncaught exception
    fails the process event.
    """

    __slots__ = ("_generator", "_target")

    def __init__(self, env: "Environment", generator: Generator) -> None:
        if not hasattr(generator, "send") or not hasattr(generator, "throw"):
            raise SimulationError(f"{generator!r} is not a generator")
        self.env = env
        self.callbacks = []
        self._value = _PENDING
        self._ok = True
        self.defused = False
        self._generator = generator
        self._target: Optional[Event] = None
        Initialize(env, self)

    @property
    def is_alive(self) -> bool:
        """True while the wrapped generator has not finished."""
        return not self.triggered

    @property
    def target(self) -> Optional[Event]:
        """The event this process is currently waiting on, if any."""
        return self._target

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupted` into the process at the current time."""
        Interruption(self, cause)

    def _resume_interrupt(self, event: Event) -> None:
        if self.triggered:
            return  # Completed before the interruption was delivered.
        # Detach from whatever the process was waiting on: the interrupt
        # supersedes it, and the stale wakeup must not resume us later.
        if self._target is not None and self._target.callbacks is not None:
            try:
                self._target.callbacks.remove(self._resume)
            except ValueError:
                pass
            else:
                # If the abandoned target later *fails*, nobody is left to
                # handle it; defuse so the stale failure cannot crash the
                # run (this is what makes killing speculative attempts and
                # crashed-machine work safe).
                self._target.add_callback(_defuse_if_failed)
        self._resume(event)

    def _resume(self, event: Event) -> None:
        self.env._active_process = self
        while True:
            if event._ok:
                try:
                    next_target = self._generator.send(event._value)
                except StopIteration as exc:
                    self._finish_ok(exc.value)
                    break
                except BaseException as exc:
                    self._finish_fail(exc)
                    break
            else:
                event.defused = True
                try:
                    next_target = self._generator.throw(event._value)
                except StopIteration as exc:
                    self._finish_ok(exc.value)
                    break
                except BaseException as exc:
                    self._finish_fail(exc)
                    break

            if not isinstance(next_target, Event):
                exc = SimulationError(
                    f"process yielded a non-event: {next_target!r}")
                event = Event(self.env)
                event._ok = False
                event._value = exc
                continue
            callbacks = next_target.callbacks
            if callbacks is None:
                # Already processed: loop around with its outcome.
                event = next_target
                continue
            self._target = next_target
            callbacks.append(self._resume)
            break
        self.env._active_process = None

    def _finish_ok(self, value: Any) -> None:
        self._target = None
        self._ok = True
        self._value = value
        self.env._enqueue(self)

    def _finish_fail(self, exc: BaseException) -> None:
        self._target = None
        self._ok = False
        self._value = exc
        self.env._enqueue(self)


class _Condition(Event):
    """Shared machinery for :class:`AllOf` and :class:`AnyOf`."""

    __slots__ = ("events", "_remaining")

    def __init__(self, env: "Environment", events: Iterable[Event]) -> None:
        super().__init__(env)
        self.events = list(events)
        for event in self.events:
            if event.env is not env:
                raise SimulationError("events belong to different environments")
        self._remaining = len(self.events)
        if not self.events:
            self._ok = True
            self._value = []
            env._enqueue(self)
            return
        for event in self.events:
            event.add_callback(self._check)

    def _check(self, event: Event) -> None:
        raise NotImplementedError


class AllOf(_Condition):
    """Succeeds when every event has succeeded; fails fast on any failure."""

    __slots__ = ()

    def _check(self, event: Event) -> None:
        if self.triggered:
            # Already failed fast (or a waiter was interrupted away): a
            # late failure among the remaining events has no handler left.
            if not event._ok:
                event.defused = True
            return
        if not event._ok:
            event.defused = True
            self.fail(event._value)
            return
        self._remaining -= 1
        if self._remaining == 0:
            self.succeed([e._value for e in self.events])


class AnyOf(_Condition):
    """Succeeds (or fails) with the outcome of the first event to fire."""

    __slots__ = ()

    def _check(self, event: Event) -> None:
        if self.triggered:
            # The race is settled; losers that fail late have no handler.
            if not event._ok:
                event.defused = True
            return
        if event._ok:
            self.succeed(event._value)
        else:
            event.defused = True
            self.fail(event._value)


class Environment:
    """The discrete-event simulation clock and event queue.

    The queue is a two-tier hybrid: events triggered *now* (the
    overwhelmingly common case -- ``succeed()``, process completion,
    condition resolution) go to a plain FIFO deque, and only genuine
    timeouts pay for the binary heap.  Virtual time never moves
    backward, so the deque is always sorted by ``(time, seq)`` and the
    true next event is whichever of the two heads compares smaller --
    exactly the order the old single heap produced, at O(1) instead of
    O(log n) per immediate event.
    """

    def __init__(self, initial_time: float = 0.0) -> None:
        self._now = float(initial_time)
        #: Future events: a binary heap of (time, seq, event) tuples.
        self._heap: list[tuple[float, int, Event]] = []
        #: Zero-delay events, FIFO.  Entries carry the same (time, seq,
        #: event) shape so the two heads compare directly.
        self._immediate: deque[tuple[float, int, Event]] = deque()
        #: Monotone sequence number: breaks same-time ties in scheduling
        #: order, which is what makes runs deterministic.
        self._seq = 0
        self._active_process: Optional[Process] = None

    @property
    def events_scheduled(self) -> int:
        """Total events ever enqueued -- regression guard for code that
        used to leak superseded waiter processes into the heap."""
        return self._seq

    @property
    def now(self) -> float:
        """The current virtual time."""
        return self._now

    @property
    def queue_size(self) -> int:
        """Events currently scheduled (triggered but not yet processed)."""
        return len(self._heap) + len(self._immediate)

    @property
    def active_process(self) -> Optional[Process]:
        """The process currently being resumed, if any."""
        return self._active_process

    # -- event construction -------------------------------------------------

    def event(self) -> Event:
        """Create a fresh, untriggered event."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """An event that fires ``delay`` seconds from now."""
        return Timeout(self, delay, value)

    def process(self, generator: Generator) -> Process:
        """Start a process driving ``generator``."""
        return Process(self, generator)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        """Barrier: fires when every event has fired (fails fast)."""
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        """Race: fires with the first event's outcome."""
        return AnyOf(self, events)

    # -- scheduling ---------------------------------------------------------

    def _enqueue(self, event: Event, delay: float = 0.0) -> None:
        seq = self._seq
        self._seq = seq + 1
        if delay == 0.0:
            self._immediate.append((self._now, seq, event))
        else:
            heappush(self._heap, (self._now + delay, seq, event))

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` if none."""
        if self._immediate:
            when = self._immediate[0][0]
            if self._heap and self._heap[0][0] < when:
                return self._heap[0][0]
            return when
        if self._heap:
            return self._heap[0][0]
        return float("inf")

    def step(self) -> None:
        """Process the single next event."""
        immediate = self._immediate
        heap = self._heap
        if immediate:
            if heap and heap[0] < immediate[0]:
                when, _, event = heappop(heap)
            else:
                when, _, event = immediate.popleft()
        elif heap:
            when, _, event = heappop(heap)
        else:
            raise EmptySchedule("no scheduled events")
        self._now = when
        callbacks = event.callbacks
        event.callbacks = None
        for callback in callbacks:
            callback(event)
        if not event._ok and not event.defused:
            raise event._value

    def run(self, until: "Event | float | None" = None) -> Any:
        """Run the simulation.

        ``until`` may be ``None`` (run until the queue drains), a number
        (run until the clock reaches that time), or an :class:`Event` (run
        until it fires, returning its value).
        """
        stop_value: Any = None
        if isinstance(until, Event):
            if until.processed:
                return until.value

            def _stop(event: Event) -> None:
                raise StopSimulation(event)

            until.add_callback(_stop)
            deadline = float("inf")
        elif until is None:
            deadline = float("inf")
        else:
            deadline = float(until)
            if deadline < self._now:
                raise SimulationError(
                    f"until={deadline} is in the past (now={self._now})")

        immediate = self._immediate
        heap = self._heap
        try:
            if deadline == float("inf"):
                # Hot loop: no deadline to check, so pop-and-dispatch
                # with everything bound locally.
                while True:
                    if immediate:
                        if heap and heap[0] < immediate[0]:
                            when, _, event = heappop(heap)
                        else:
                            when, _, event = immediate.popleft()
                    elif heap:
                        when, _, event = heappop(heap)
                    else:
                        break
                    self._now = when
                    callbacks = event.callbacks
                    event.callbacks = None
                    for callback in callbacks:
                        callback(event)
                    if not event._ok and not event.defused:
                        raise event._value
            else:
                while (immediate or heap) and self.peek() <= deadline:
                    self.step()
        except StopSimulation as stop:
            event = stop.value
            if not event._ok:
                raise event._value
            return event._value
        if deadline != float("inf"):
            self._now = deadline
        if isinstance(until, Event) and not until.processed:
            raise SimulationError("run() ended before the awaited event fired")
        return stop_value
