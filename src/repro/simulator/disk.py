"""Disk models.

Two device behaviours matter to the paper:

* **HDD**: a single head.  One sequential stream runs at full throughput
  after one seek; concurrent streams are interleaved at a fixed chunk
  granularity and pay a seek on every stream switch, which roughly halves
  effective throughput under the fine-grained concurrent access pattern
  of Spark tasks (§5.4).  Implemented as a chunked round-robin server.

* **SSD**: an internally parallel device.  A single stream cannot
  saturate it; aggregate throughput scales with the number of concurrent
  requests up to ``max_concurrency`` (the paper found four outstanding
  monotasks reach near-maximum throughput, §3.3).  Implemented as a
  rate-shared server with a per-stream cap.

Both expose ``submit(nbytes, kind) -> Event`` and a :class:`BusyTracker`.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Generator, List, Optional

from repro.config import DiskSpec
from repro.errors import SimulationError
from repro.simulator.core import Environment, Event
from repro.simulator.resources import BusyTracker

__all__ = ["Disk", "DiskRequest"]

#: Extra seek multiplier when the head alternates between read and
#: write streams (anticipatory scheduling loss, write settling).
READ_WRITE_SWITCH_FACTOR = 4.0


class DiskRequest:
    """One outstanding read or write of ``nbytes`` contiguous bytes."""

    __slots__ = ("nbytes", "remaining", "kind", "done", "submitted_at",
                 "started_at", "rate", "label")

    def __init__(self, env: Environment, nbytes: float, kind: str,
                 label: str = "") -> None:
        if nbytes < 0:
            raise SimulationError(f"negative request size: {nbytes}")
        if kind not in ("read", "write"):
            raise SimulationError(f"unknown request kind: {kind}")
        self.nbytes = float(nbytes)
        self.remaining = float(nbytes)
        self.kind = kind
        self.label = label
        self.done: Event = env.event()
        self.submitted_at = env.now
        self.started_at: Optional[float] = None
        self.rate = 0.0  # SSD mode only


class Disk:
    """A single physical disk on one machine."""

    def __init__(self, env: Environment, spec: DiskSpec, name: str = "disk") -> None:
        self.env = env
        self.spec = spec
        self.name = name
        self.tracker = BusyTracker(env, spec.max_concurrency, name)
        self.bytes_read = 0.0
        self.bytes_written = 0.0
        self.seeks = 0
        #: (completion time, bytes, kind) per request -- machine-level
        #: observation used by the Spark-based models (§6.6).
        self.transfer_log: List[tuple] = []
        if spec.max_concurrency == 1:
            self._queue: Deque[DiskRequest] = deque()
            self._server_active = False
        else:
            self._active: List[DiskRequest] = []
            self._recompute_seq = 0

    # -- public API ----------------------------------------------------------

    @property
    def is_hdd(self) -> bool:
        """True for single-head (spinning) devices."""
        return self.spec.max_concurrency == 1

    def submit(self, nbytes: float, kind: str, label: str = "") -> Event:
        """Start a request; the returned event fires when it completes."""
        request = DiskRequest(self.env, nbytes, kind, label)
        if kind == "read":
            self.bytes_read += request.nbytes
        else:
            self.bytes_written += request.nbytes
        if request.nbytes == 0:
            request.done.succeed(request)
            return request.done
        if self.is_hdd:
            self._queue.append(request)
            if not self._server_active:
                self._server_active = True
                self.env.process(self._serve_hdd())
        else:
            self._admit_ssd(request)
        return request.done

    def read(self, nbytes: float, label: str = "") -> Event:
        """Submit a read request."""
        return self.submit(nbytes, "read", label)

    def write(self, nbytes: float, label: str = "") -> Event:
        """Submit a write request."""
        return self.submit(nbytes, "write", label)

    def time_to_serve(self, nbytes: float) -> float:
        """Uncontended sequential service time: one seek plus transfer."""
        return self.spec.seek_time_s + nbytes / self.spec.throughput_bps

    @property
    def queue_length(self) -> int:
        """Requests outstanding (queued plus in service)."""
        if self.is_hdd:
            return len(self._queue) + (1 if self._server_active else 0)
        return len(self._active)

    # -- HDD: chunked round-robin server --------------------------------------

    def _serve_hdd(self) -> Generator:
        spec = self.spec
        last: Optional[DiskRequest] = None
        self.tracker.set_busy(1)
        try:
            while self._queue:
                request = self._queue.popleft()
                if request.started_at is None:
                    request.started_at = self.env.now
                chunk = min(spec.interleave_bytes, request.remaining)
                service = chunk / spec.throughput_bps
                # A seek is paid when the head moves: at the start of a new
                # request, or when switching between interleaved streams.
                # Alternating between reads and writes is costlier still
                # (head repositioning plus write-settling), which is what
                # makes Spark's mixed map-stage I/O so expensive (§5.4).
                if request is not last:
                    penalty = spec.seek_time_s
                    if last is not None and request.kind != last.kind:
                        penalty *= READ_WRITE_SWITCH_FACTOR
                    service += penalty
                    self.seeks += 1
                yield self.env.timeout(service)
                request.remaining -= chunk
                if request.remaining > 1e-9:
                    self._queue.append(request)
                    last = request
                else:
                    request.remaining = 0.0
                    last = request
                    self.transfer_log.append(
                        (self.env.now, request.nbytes, request.kind))
                    request.done.succeed(request)
        finally:
            self._server_active = False
            self.tracker.set_busy(0)

    # -- SSD: rate-shared server ----------------------------------------------

    def _admit_ssd(self, request: DiskRequest) -> None:
        request.started_at = self.env.now
        self._active.append(request)
        self._recompute_ssd()

    def _ssd_rate_per_request(self, n: int) -> float:
        """Per-request service rate with ``n`` concurrent requests.

        Each stream is capped at ``throughput / max_concurrency``; with
        more than ``max_concurrency`` streams the full device rate is
        shared evenly.
        """
        spec = self.spec
        if n <= 0:
            return 0.0
        per_stream_cap = spec.throughput_bps / spec.max_concurrency
        return min(per_stream_cap, spec.throughput_bps / n)

    def _recompute_ssd(self) -> None:
        """Re-shard device bandwidth and reschedule the next completion."""
        now = self.env.now
        for request in self._active:
            # Progress accrued since the last recompute at the old rate.
            if request.rate > 0:
                elapsed = now - request.started_at
                request.remaining = max(
                    0.0, request.remaining - request.rate * elapsed)
            request.started_at = now
        n = len(self._active)
        rate = self._ssd_rate_per_request(n)
        for request in self._active:
            request.rate = rate
        self.tracker.set_busy(min(n, self.spec.max_concurrency))
        self._recompute_seq += 1
        if not self._active:
            return
        seq = self._recompute_seq
        soonest = min(self._active, key=lambda r: r.remaining)
        delay = self.spec.seek_time_s + soonest.remaining / rate
        self.env.process(self._ssd_completion(seq, delay))

    def _ssd_completion(self, seq: int, delay: float) -> Generator:
        yield self.env.timeout(delay)
        if seq != self._recompute_seq:
            return  # A newer recompute superseded this completion.
        now = self.env.now
        finished = []
        for request in self._active:
            progressed = request.rate * (now - request.started_at)
            if request.remaining - progressed <= 1e-9:
                request.remaining = 0.0
                finished.append(request)
        for request in finished:
            self._active.remove(request)
        self._recompute_ssd()
        for request in finished:
            self.transfer_log.append(
                (self.env.now, request.nbytes, request.kind))
            request.done.succeed(request)
