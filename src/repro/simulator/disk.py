"""Disk models.

Two device behaviours matter to the paper:

* **HDD**: a single head.  One sequential stream runs at full throughput
  after one seek; concurrent streams are interleaved at a fixed chunk
  granularity and pay a seek on every stream switch, which roughly halves
  effective throughput under the fine-grained concurrent access pattern
  of Spark tasks (§5.4).  Implemented as a chunked round-robin server.

* **SSD**: an internally parallel device.  A single stream cannot
  saturate it; aggregate throughput scales with the number of concurrent
  requests up to ``max_concurrency`` (the paper found four outstanding
  monotasks reach near-maximum throughput, §3.3).  Implemented as a
  rate-shared server with a per-stream cap.

Both expose ``submit(nbytes, kind) -> Event`` and a :class:`BusyTracker`.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Generator, List, Optional

from repro.config import DiskSpec
from repro.errors import DiskFailure, Interrupted, SimulationError
from repro.simulator.core import Environment, Event, Process
from repro.simulator.resources import BusyTracker

__all__ = ["Disk", "DiskRequest"]

#: Extra seek multiplier when the head alternates between read and
#: write streams (anticipatory scheduling loss, write settling).
READ_WRITE_SWITCH_FACTOR = 4.0


class DiskRequest:
    """One outstanding read or write of ``nbytes`` contiguous bytes."""

    __slots__ = ("nbytes", "remaining", "kind", "done", "submitted_at",
                 "started_at", "rate", "label")

    def __init__(self, env: Environment, nbytes: float, kind: str,
                 label: str = "") -> None:
        if nbytes < 0:
            raise SimulationError(f"negative request size: {nbytes}")
        if kind not in ("read", "write"):
            raise SimulationError(f"unknown request kind: {kind}")
        self.nbytes = float(nbytes)
        self.remaining = float(nbytes)
        self.kind = kind
        self.label = label
        self.done: Event = env.event()
        self.submitted_at = env.now
        self.started_at: Optional[float] = None
        self.rate = 0.0  # SSD mode only


class Disk:
    """A single physical disk on one machine."""

    def __init__(self, env: Environment, spec: DiskSpec, name: str = "disk") -> None:
        self.env = env
        self.spec = spec
        #: Pristine spec kept so injected degradation can be undone.
        self.base_spec = spec
        self.name = name
        #: True after a fault; submissions fail until the disk is revived.
        self.dead = False
        self.tracker = BusyTracker(env, spec.max_concurrency, name)
        self.bytes_read = 0.0
        self.bytes_written = 0.0
        self.seeks = 0
        #: (completion time, bytes, kind) per request -- machine-level
        #: observation used by the Spark-based models (§6.6).
        self.transfer_log: List[tuple] = []
        if spec.max_concurrency == 1:
            self._queue: Deque[DiskRequest] = deque()
            self._server_active = False
            self._server: Optional[Process] = None
            self._current: Optional[DiskRequest] = None
            #: True while the server is inside a multi-chunk batch that a
            #: new arrival should preempt at the next chunk boundary.
            self._batch_preemptible = False
        else:
            self._active: List[DiskRequest] = []
            self._waiter: Optional[Process] = None
            self._wake_at = float("inf")

    # -- public API ----------------------------------------------------------

    @property
    def is_hdd(self) -> bool:
        """True for single-head (spinning) devices."""
        return self.spec.max_concurrency == 1

    def submit(self, nbytes: float, kind: str, label: str = "") -> Event:
        """Start a request; the returned event fires when it completes."""
        request = DiskRequest(self.env, nbytes, kind, label)
        if self.dead:
            request.done.fail(DiskFailure(f"{self.name} is dead"))
            return request.done
        if kind == "read":
            self.bytes_read += request.nbytes
        else:
            self.bytes_written += request.nbytes
        if request.nbytes == 0:
            request.done.succeed(request)
            return request.done
        if self.is_hdd:
            self._queue.append(request)
            if not self._server_active:
                self._server_active = True
                self._server = self.env.process(self._serve_hdd())
            elif self._batch_preemptible:
                # The server is deep in a lone request's batched
                # transfer: cut it short at the next chunk boundary so
                # the new arrival gets its round-robin turn.
                self._batch_preemptible = False
                self._server.interrupt(cause="new-request")
        else:
            self._admit_ssd(request)
        return request.done

    def fail_all(self) -> int:
        """Fail every outstanding request (fault injection).

        Marks the disk dead; call :meth:`revive` to accept new requests
        again.  Returns the number of requests killed.
        """
        self.dead = True
        if self.is_hdd:
            victims = list(self._queue)
            self._queue.clear()
            if self._current is not None:
                victims.append(self._current)
                self._current = None
            if self._server is not None and self._server.is_alive:
                self._server.interrupt(cause="disk-failed")
        else:
            victims = list(self._active)
            self._active.clear()
            self.tracker.set_busy(0)
            # The SSD waiter exits on its own when it wakes to no work.
        for request in victims:
            request.done.fail(DiskFailure(
                f"{self.name} failed with {request.kind} outstanding"))
        return len(victims)

    def revive(self) -> None:
        """Bring a failed disk back (empty, at its original speed)."""
        self.dead = False
        self.spec = self.base_spec

    def read(self, nbytes: float, label: str = "") -> Event:
        """Submit a read request."""
        return self.submit(nbytes, "read", label)

    def write(self, nbytes: float, label: str = "") -> Event:
        """Submit a write request."""
        return self.submit(nbytes, "write", label)

    def time_to_serve(self, nbytes: float) -> float:
        """Uncontended sequential service time: one seek plus transfer."""
        return self.spec.seek_time_s + nbytes / self.spec.throughput_bps

    @property
    def queue_length(self) -> int:
        """Requests outstanding (queued plus in service)."""
        if self.is_hdd:
            return len(self._queue) + (1 if self._server_active else 0)
        return len(self._active)

    # -- HDD: chunked round-robin server --------------------------------------

    def _serve_hdd(self) -> Generator:
        spec = self.spec
        last: Optional[DiskRequest] = None
        self.tracker.set_busy(1)
        try:
            while self._queue:
                request = self._queue.popleft()
                self._current = request
                if request.started_at is None:
                    request.started_at = self.env.now
                # A seek is paid when the head moves: at the start of a new
                # request, or when switching between interleaved streams.
                # Alternating between reads and writes is costlier still
                # (head repositioning plus write-settling), which is what
                # makes Spark's mixed map-stage I/O so expensive (§5.4).
                if request is not last:
                    penalty = spec.seek_time_s
                    if last is not None and request.kind != last.kind:
                        penalty *= READ_WRITE_SWITCH_FACTOR
                    self.seeks += 1
                else:
                    penalty = 0.0
                chunk_s = spec.interleave_bytes / spec.throughput_bps
                if self._queue:
                    # Contended: one interleave chunk, then rotate.
                    batch = min(spec.interleave_bytes, request.remaining)
                    nchunks = 1
                else:
                    # Lone request: serve every remaining chunk under a
                    # single timeout -- O(1) kernel events instead of
                    # O(chunks) -- and let a new arrival preempt at the
                    # next chunk boundary (below), which is exactly where
                    # the per-chunk loop would have rotated streams.
                    batch = request.remaining
                    nchunks = int(-(-batch // spec.interleave_bytes))
                served = batch
                self._batch_preemptible = nchunks > 1
                begin = self.env.now
                try:
                    yield self.env.timeout(
                        penalty + batch / spec.throughput_bps)
                except Interrupted as exc:
                    if exc.cause != "new-request":
                        raise
                    # Preempted mid-batch: bank the chunks fully served,
                    # then finish the chunk in flight at its boundary.
                    elapsed = self.env.now - begin
                    full = (int((elapsed - penalty) / chunk_s)
                            if elapsed > penalty else 0)
                    full = max(0, min(full, nchunks - 1))
                    served = min((full + 1) * spec.interleave_bytes, batch)
                    residual = (penalty + served / spec.throughput_bps
                                - elapsed)
                    if residual > 0:
                        yield self.env.timeout(residual)
                finally:
                    self._batch_preemptible = False
                request.remaining -= served
                self._current = None
                if request.remaining > 1e-9:
                    self._queue.append(request)
                    last = request
                else:
                    request.remaining = 0.0
                    last = request
                    self.transfer_log.append(
                        (self.env.now, request.nbytes, request.kind))
                    request.done.succeed(request)
        except Interrupted:
            pass  # Disk failed mid-service; fail_all() settles the queue.
        finally:
            self._current = None
            self._server_active = False
            self._batch_preemptible = False
            self.tracker.set_busy(0)

    # -- SSD: rate-shared server ----------------------------------------------

    def _admit_ssd(self, request: DiskRequest) -> None:
        request.started_at = self.env.now
        self._active.append(request)
        self._recompute_ssd()

    def _ssd_rate_per_request(self, n: int) -> float:
        """Per-request service rate with ``n`` concurrent requests.

        Each stream is capped at ``throughput / max_concurrency``; with
        more than ``max_concurrency`` streams the full device rate is
        shared evenly.
        """
        spec = self.spec
        if n <= 0:
            return 0.0
        per_stream_cap = spec.throughput_bps / spec.max_concurrency
        return min(per_stream_cap, spec.throughput_bps / n)

    def _recompute_ssd(self) -> None:
        """Re-shard device bandwidth and re-aim the completion waiter."""
        now = self.env.now
        for request in self._active:
            # Progress accrued since the last recompute at the old rate.
            if request.rate > 0:
                elapsed = now - request.started_at
                request.remaining = max(
                    0.0, request.remaining - request.rate * elapsed)
            request.started_at = now
        n = len(self._active)
        rate = self._ssd_rate_per_request(n)
        for request in self._active:
            request.rate = rate
        self.tracker.set_busy(min(n, self.spec.max_concurrency))
        self._arm_ssd()

    def _ssd_next_deadline(self) -> float:
        soonest = min(self._active, key=lambda r: r.remaining)
        rate = max(soonest.rate, 1e-12)
        return (self.env.now + self.spec.seek_time_s
                + soonest.remaining / rate)

    def _arm_ssd(self) -> None:
        """One persistent waiter, re-aimed like the network's: interrupt
        only when the deadline moved earlier, discover later deadlines on
        wakeup.  Request churn leaves no superseded events in the heap."""
        if not self._active:
            self._wake_at = float("inf")
            return
        wake_at = self._ssd_next_deadline()
        if self._waiter is None or not self._waiter.is_alive:
            self._wake_at = wake_at
            self._waiter = self.env.process(self._ssd_completion_loop())
        elif wake_at < self._wake_at:
            self._wake_at = wake_at
            self._waiter.interrupt(cause="rearm")

    def _ssd_completion_loop(self) -> Generator:
        while self._active:
            delay = self._wake_at - self.env.now
            if delay > 0:
                try:
                    yield self.env.timeout(delay)
                except Interrupted:
                    continue  # Re-armed at an earlier deadline.
                if not self._active:
                    break  # All requests failed while we slept.
            now = self.env.now
            finished = []
            for request in self._active:
                progressed = request.rate * (now - request.started_at)
                if request.remaining - progressed <= 1e-9:
                    request.remaining = 0.0
                    finished.append(request)
            if not finished:
                # Rates dropped since arming (new requests admitted):
                # this wakeup is early.  Bank progress and sleep again.
                for request in self._active:
                    if request.rate > 0:
                        request.remaining = max(
                            0.0,
                            request.remaining
                            - request.rate * (now - request.started_at))
                    request.started_at = now
                self._wake_at = self._ssd_next_deadline()
                continue
            for request in finished:
                self._active.remove(request)
            self._recompute_ssd()
            for request in finished:
                self.transfer_log.append(
                    (self.env.now, request.nbytes, request.kind))
                request.done.succeed(request)
