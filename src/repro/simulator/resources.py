"""Synchronization and measurement primitives built on the event kernel.

These are the building blocks the hardware models and frameworks share:

* :class:`Store` -- an unbounded or bounded FIFO channel of items.
* :class:`Semaphore` -- counted admission control (cores, disk slots...).
* :class:`BusyTracker` -- records how many units of a resource are busy
  over time, from which utilization time series are derived.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, List, Optional, Tuple

from repro.errors import SimulationError
from repro.simulator.core import Environment, Event

__all__ = ["Store", "Semaphore", "BusyTracker"]


class Store:
    """A FIFO channel: producers ``put`` items, consumers ``get`` events.

    ``capacity`` bounds the number of buffered items; ``put`` returns an
    event that does not fire until there is room.  An unbounded store
    (the default) completes puts immediately.
    """

    def __init__(self, env: Environment, capacity: float = float("inf")) -> None:
        if capacity <= 0:
            raise SimulationError(f"store capacity must be positive: {capacity}")
        self.env = env
        self.capacity = capacity
        self.items: Deque[Any] = deque()
        self._getters: Deque[Event] = deque()
        self._putters: Deque[Tuple[Event, Any]] = deque()

    def __len__(self) -> int:
        return len(self.items)

    def put(self, item: Any) -> Event:
        """Buffer ``item``; the event fires once there is room."""
        event = self.env.event()
        if len(self.items) < self.capacity:
            self._deliver(item)
            event.succeed()
        else:
            self._putters.append((event, item))
        return event

    def get(self) -> Event:
        """The event fires with the next item, FIFO."""
        event = self.env.event()
        if self.items:
            event.succeed(self.items.popleft())
            self._admit_waiting_putter()
        else:
            self._getters.append(event)
        return event

    def _deliver(self, item: Any) -> None:
        if self._getters:
            self._getters.popleft().succeed(item)
        else:
            self.items.append(item)

    def _admit_waiting_putter(self) -> None:
        if self._putters and len(self.items) < self.capacity:
            event, item = self._putters.popleft()
            self._deliver(item)
            event.succeed()


class Semaphore:
    """Counted admission control with FIFO waiting.

    ``acquire`` returns an event that fires once a unit is available; the
    holder must call ``release`` exactly once.
    """

    def __init__(self, env: Environment, units: int) -> None:
        if units < 1:
            raise SimulationError(f"semaphore needs at least one unit: {units}")
        self.env = env
        self.units = units
        self.in_use = 0
        self._waiters: Deque[Event] = deque()

    @property
    def available(self) -> int:
        """Units not currently held."""
        return self.units - self.in_use

    @property
    def queue_length(self) -> int:
        """Acquirers currently waiting."""
        return len(self._waiters)

    def acquire(self) -> Event:
        """The event fires once a unit is granted (FIFO order)."""
        event = self.env.event()
        if self.in_use < self.units:
            self.in_use += 1
            event.succeed()
        else:
            self._waiters.append(event)
        return event

    def release(self) -> None:
        """Return a unit, waking the oldest waiter if any."""
        if self.in_use <= 0:
            raise SimulationError("release() without a matching acquire()")
        if self._waiters:
            self._waiters.popleft().succeed()
        else:
            self.in_use -= 1


class BusyTracker:
    """Step-function record of how many units of a resource are busy.

    The tracker stores ``(time, busy_units)`` change points.  Utilization
    over a window and full time series are computed by
    :mod:`repro.metrics.utilization` from these change points.
    """

    def __init__(self, env: Environment, units: int, name: str = "") -> None:
        self.env = env
        self.units = units
        self.name = name
        self.busy = 0
        self.changes: List[Tuple[float, int]] = [(env.now, 0)]

    def add(self, delta: int = 1) -> None:
        """Mark ``delta`` more units busy from now on."""
        self.busy += delta
        if self.busy < 0:
            raise SimulationError(f"{self.name}: busy count went negative")
        self._record()

    def remove(self, delta: int = 1) -> None:
        """Mark ``delta`` units idle again."""
        self.add(-delta)

    def set_busy(self, busy: int) -> None:
        """Set the absolute busy-unit count."""
        self.busy = busy
        self._record()

    def _record(self) -> None:
        now = self.env.now
        if self.changes and self.changes[-1][0] == now:
            self.changes[-1] = (now, self.busy)
        else:
            self.changes.append((now, self.busy))

    def busy_time(self, start: float = 0.0, end: Optional[float] = None) -> float:
        """Total busy unit-seconds in ``[start, end]``."""
        if end is None:
            end = self.env.now
        total = 0.0
        for (t0, busy), (t1, _) in zip(self.changes, self.changes[1:]):
            lo, hi = max(t0, start), min(t1, end)
            if hi > lo:
                total += busy * (hi - lo)
        # Tail segment from the last change point to `end`.
        t_last, busy_last = self.changes[-1]
        lo, hi = max(t_last, start), end
        if hi > lo:
            total += busy_last * (hi - lo)
        return total

    def utilization(self, start: float = 0.0, end: Optional[float] = None) -> float:
        """Mean fraction of units busy over ``[start, end]``."""
        if end is None:
            end = self.env.now
        window = end - start
        if window <= 0:
            return 0.0
        return self.busy_time(start, end) / (self.units * window)
