"""Synchronization and measurement primitives built on the event kernel.

These are the building blocks the hardware models and frameworks share:

* :class:`Store` -- an unbounded or bounded FIFO channel of items.
* :class:`Semaphore` -- counted admission control (cores, disk slots...).
* :class:`BusyTracker` -- records how many units of a resource are busy
  over time, from which utilization time series are derived.
"""

from __future__ import annotations

from bisect import bisect_right
from collections import deque
from typing import Any, Deque, List, Optional, Sequence, Tuple

from repro.errors import SimulationError
from repro.simulator.core import Environment, Event

__all__ = ["Store", "Semaphore", "BusyTracker"]


class Store:
    """A FIFO channel: producers ``put`` items, consumers ``get`` events.

    ``capacity`` bounds the number of buffered items; ``put`` returns an
    event that does not fire until there is room.  An unbounded store
    (the default) completes puts immediately.
    """

    def __init__(self, env: Environment, capacity: float = float("inf")) -> None:
        if capacity <= 0:
            raise SimulationError(f"store capacity must be positive: {capacity}")
        self.env = env
        self.capacity = capacity
        self.items: Deque[Any] = deque()
        self._getters: Deque[Event] = deque()
        self._putters: Deque[Tuple[Event, Any]] = deque()

    def __len__(self) -> int:
        return len(self.items)

    def put(self, item: Any) -> Event:
        """Buffer ``item``; the event fires once there is room."""
        event = self.env.event()
        if len(self.items) < self.capacity:
            self._deliver(item)
            event.succeed()
        else:
            self._putters.append((event, item))
        return event

    def get(self) -> Event:
        """The event fires with the next item, FIFO."""
        event = self.env.event()
        if self.items:
            event.succeed(self.items.popleft())
            self._admit_waiting_putter()
        else:
            self._getters.append(event)
        return event

    def _deliver(self, item: Any) -> None:
        if self._getters:
            self._getters.popleft().succeed(item)
        else:
            self.items.append(item)

    def _admit_waiting_putter(self) -> None:
        if self._putters and len(self.items) < self.capacity:
            event, item = self._putters.popleft()
            self._deliver(item)
            event.succeed()


class Semaphore:
    """Counted admission control with FIFO waiting.

    ``acquire`` returns an event that fires once a unit is available; the
    holder must call ``release`` exactly once.
    """

    def __init__(self, env: Environment, units: int) -> None:
        if units < 1:
            raise SimulationError(f"semaphore needs at least one unit: {units}")
        self.env = env
        self.units = units
        self.in_use = 0
        self._waiters: Deque[Event] = deque()

    @property
    def available(self) -> int:
        """Units not currently held."""
        return self.units - self.in_use

    @property
    def queue_length(self) -> int:
        """Acquirers currently waiting."""
        return len(self._waiters)

    def acquire(self) -> Event:
        """The event fires once a unit is granted (FIFO order)."""
        event = self.env.event()
        if self.in_use < self.units:
            self.in_use += 1
            event.succeed()
        else:
            self._waiters.append(event)
        return event

    def release(self) -> None:
        """Return a unit, waking the oldest waiter if any."""
        if self.in_use <= 0:
            raise SimulationError("release() without a matching acquire()")
        if self._waiters:
            self._waiters.popleft().succeed()
        else:
            self.in_use -= 1


class BusyTracker:
    """Step-function record of how many units of a resource are busy.

    The tracker stores ``(time, busy_units)`` change points plus a
    parallel prefix-sum of busy unit-seconds, so any window query is two
    bisects instead of a scan from t=0.  Utilization over a window and
    full time series are computed by :mod:`repro.metrics.utilization`
    from these change points.

    With a ``retention_s`` horizon set (the telemetry retention window,
    see :meth:`set_retention`), change points older than twice the
    horizon are compacted away into a checkpoint ``(first change time,
    busy-seconds before it)``.  Totals measured from the tracker's
    creation time stay exact; window queries that reach *inside* the
    compacted region prorate the checkpointed mass uniformly (documented
    approximation -- everything within the retention horizon is exact).
    """

    __slots__ = ("env", "units", "name", "busy", "changes",
                 "_cum", "_cum0", "_origin", "retention_s")

    def __init__(self, env: Environment, units: int, name: str = "",
                 retention_s: Optional[float] = None) -> None:
        self.env = env
        self.units = units
        self.name = name
        self.busy = 0
        self.changes: List[Tuple[float, int]] = [(env.now, 0)]
        #: Prefix sums: ``_cum[i]`` = busy unit-seconds accumulated from
        #: ``changes[0]`` up to ``changes[i]``.
        self._cum: List[float] = [0.0]
        #: Busy unit-seconds compacted away before ``changes[0]``.
        self._cum0 = 0.0
        #: Time the tracker started observing (usually 0.0).
        self._origin = env.now
        self.retention_s = None
        self.set_retention(retention_s)

    def __len__(self) -> int:
        """Retained change points (bounded when a horizon is set)."""
        return len(self.changes)

    def set_retention(self, retention_s: Optional[float]) -> None:
        """Bound retained change points to roughly ``retention_s`` of
        history (pass ``None`` to retain everything)."""
        if retention_s is not None and not retention_s > 0:
            raise SimulationError(
                f"{self.name}: retention must be positive, got {retention_s!r}")
        self.retention_s = retention_s

    def add(self, delta: int = 1) -> None:
        """Mark ``delta`` more units busy from now on."""
        busy = self.busy + delta
        if busy < 0:
            raise SimulationError(f"{self.name}: busy count went negative")
        self.busy = busy
        self._record()

    def remove(self, delta: int = 1) -> None:
        """Mark ``delta`` units idle again."""
        self.add(-delta)

    def set_busy(self, busy: int) -> None:
        """Set the absolute busy-unit count."""
        if busy < 0:
            raise SimulationError(f"{self.name}: busy count went negative")
        self.busy = busy
        self._record()

    def _record(self) -> None:
        now = self.env.now
        changes = self.changes
        t_last, b_last = changes[-1]
        if t_last == now:
            changes[-1] = (now, self.busy)
        else:
            changes.append((now, self.busy))
            self._cum.append(self._cum[-1] + b_last * (now - t_last))
            retention = self.retention_s
            if retention is not None and changes[0][0] < now - 2.0 * retention:
                self._compact(now - retention)

    def _compact(self, horizon: float) -> None:
        """Fold change points strictly before ``horizon`` into the
        checkpoint, keeping the last one at-or-before it as the new
        first point (its busy level is in effect at the horizon)."""
        idx = bisect_right(self.changes, (horizon, float("inf"))) - 1
        if idx <= 0:
            return
        base = self._cum[idx]
        self._cum0 += base
        del self.changes[:idx]
        self._cum = [c - base for c in self._cum[idx:]]

    def _integral(self, t: float) -> float:
        """Busy unit-seconds from the tracker origin to time ``t``."""
        changes = self.changes
        t0 = changes[0][0]
        if t <= t0:
            # Inside (or before) the compacted region: prorate the
            # checkpointed mass uniformly over [origin, t0].
            span = t0 - self._origin
            if span <= 0.0 or t <= self._origin:
                return 0.0
            return self._cum0 * ((t - self._origin) / span)
        i = bisect_right(changes, (t, float("inf"))) - 1
        t_i, busy_i = changes[i]
        return self._cum0 + self._cum[i] + busy_i * (t - t_i)

    def busy_time(self, start: float = 0.0, end: Optional[float] = None) -> float:
        """Total busy unit-seconds in ``[start, end]``."""
        if end is None:
            end = self.env.now
        if end <= start:
            return 0.0
        return self._integral(end) - self._integral(start)

    def busy_integrals(self, times: Sequence[float]) -> List[float]:
        """Busy unit-seconds from the origin to each of ``times``.

        ``times`` must be non-decreasing; the result is computed in one
        merged sweep over the change points, so sampling W window edges
        costs O(W + n) rather than W independent scans.
        """
        changes = self.changes
        cum = self._cum
        n = len(changes)
        out: List[float] = []
        i = 0  # index of the last change point at or before t
        for t in times:
            if t <= changes[0][0]:
                span = changes[0][0] - self._origin
                if span <= 0.0 or t <= self._origin:
                    out.append(0.0)
                else:
                    out.append(self._cum0 * ((t - self._origin) / span))
                continue
            while i + 1 < n and changes[i + 1][0] <= t:
                i += 1
            t_i, busy_i = changes[i]
            out.append(self._cum0 + cum[i] + busy_i * (t - t_i))
        return out

    def utilization(self, start: float = 0.0, end: Optional[float] = None) -> float:
        """Mean fraction of units busy over ``[start, end]``."""
        if end is None:
            end = self.env.now
        window = end - start
        if window <= 0:
            return 0.0
        return self.busy_time(start, end) / (self.units * window)
