"""Discrete-event simulation substrate: kernel, RNG, and hardware models."""

from repro.simulator.core import AllOf, AnyOf, Environment, Event, Process, Timeout
from repro.simulator.cpu import CpuPool
from repro.simulator.disk import Disk, DiskRequest
from repro.simulator.buffercache import BufferCache
from repro.simulator.memory import MemoryPool
from repro.simulator.network import Flow, Network
from repro.simulator.resources import BusyTracker, Semaphore, Store
from repro.simulator.rng import RngStreams

__all__ = [
    "AllOf",
    "AnyOf",
    "Environment",
    "Event",
    "Process",
    "Timeout",
    "CpuPool",
    "Disk",
    "DiskRequest",
    "BufferCache",
    "MemoryPool",
    "Flow",
    "Network",
    "BusyTracker",
    "Semaphore",
    "Store",
    "RngStreams",
]
