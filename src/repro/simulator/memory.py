"""Per-machine memory accounting.

The paper notes (§3.5, §8) that MonoSpark materializes whole task inputs
and outputs in memory between monotasks, so it uses more memory than
Spark's record-at-a-time pipelining.  We track allocations so experiments
can report peak usage per engine; by default exceeding capacity is
*recorded* rather than fatal (the paper's prototype does not regulate
memory either), but a strict mode raises for tests that want the guard.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.errors import OutOfMemoryError, SimulationError
from repro.simulator.core import Environment

__all__ = ["MemoryPool"]


class MemoryPool:
    """Tracks bytes of task data resident in one machine's heap."""

    def __init__(self, env: Environment, capacity_bytes: float,
                 name: str = "memory", strict: bool = False) -> None:
        if capacity_bytes <= 0:
            raise SimulationError(f"memory capacity must be positive")
        self.env = env
        self.capacity = capacity_bytes
        self.name = name
        self.strict = strict
        self.used = 0.0
        self.peak = 0.0
        self.overcommit_events = 0
        #: (time, used) change points for plotting memory pressure.
        self.timeline: List[Tuple[float, float]] = [(env.now, 0.0)]

    def acquire(self, nbytes: float) -> None:
        """Account for ``nbytes`` of new resident data."""
        if nbytes < 0:
            raise SimulationError(f"negative allocation: {nbytes}")
        self.used += nbytes
        if self.used > self.capacity:
            self.overcommit_events += 1
            if self.strict:
                self.used -= nbytes
                raise OutOfMemoryError(
                    f"{self.name}: {self.used + nbytes:.0f} bytes requested "
                    f"of {self.capacity:.0f} capacity")
        self.peak = max(self.peak, self.used)
        self._record()

    def release(self, nbytes: float) -> None:
        """Account for ``nbytes`` of data leaving memory."""
        if nbytes < 0:
            raise SimulationError(f"negative release: {nbytes}")
        self.used -= nbytes
        # Tolerance scales with peak usage: thousands of float adds and
        # subtracts at GB magnitudes accumulate rounding error.
        tolerance = 1e-3 + self.peak * 1e-9
        if self.used < -tolerance:
            raise SimulationError(f"{self.name}: released more than acquired")
        self.used = max(0.0, self.used)
        self._record()

    def _record(self) -> None:
        now = self.env.now
        if self.timeline and self.timeline[-1][0] == now:
            self.timeline[-1] = (now, self.used)
        else:
            self.timeline.append((now, self.used))
