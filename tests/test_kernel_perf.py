"""Regression tests for the kernel/observability hot-path overhaul.

Pins the properties the kernel-throughput work relies on: busy-tracker
memory is bounded by the retention horizon (not the run length), window
queries inside the horizon stay exact after compaction, the serving
layer wires the telemetry horizon into every hardware tracker, and the
shared percentile helper guards its edge cases.
"""

import pytest

from repro.clarity.tsdb import TimeSeriesStore
from repro.errors import ClarityError, SimulationError
from repro.simulator import BusyTracker, Environment
from repro.stats import percentile


def drive_tracker(total_s: float, retention_s, period_s: float = 1.0):
    """A tracker toggled busy/idle twice per period for ``total_s``."""
    env = Environment()
    tracker = BusyTracker(env, units=2, name="t", retention_s=retention_s)

    def toggler():
        while True:
            tracker.add(1)
            yield env.timeout(period_s / 2.0)
            tracker.remove(1)
            yield env.timeout(period_s / 2.0)

    env.process(toggler())
    env.run(until=total_s)
    return env, tracker


class TestBusyTrackerBoundedMemory:
    def test_memory_bounded_by_horizon_not_run_length(self):
        _, short = drive_tracker(200.0, retention_s=50.0)
        _, long = drive_tracker(2000.0, retention_s=50.0)
        # Two change points per simulated second; compaction keeps at
        # most ~2x the horizon of history, so the bound is a function
        # of the horizon alone.  The long run must not retain more.
        assert len(long) <= 2 * (2 * 50) + 8
        assert len(long) <= len(short) + 8

    def test_everything_retained_without_horizon(self):
        _, tracker = drive_tracker(500.0, retention_s=None)
        assert len(tracker) >= 2 * 500 - 2

    def test_per_sample_state_independent_of_run_length(self):
        # The per-sample telemetry cost is O(retained change points +
        # retained series points).  Both must depend on the horizon
        # only: a 10x longer run may not enlarge either structure.
        _, short_tracker = drive_tracker(300.0, retention_s=60.0)
        _, long_tracker = drive_tracker(3000.0, retention_s=60.0)
        assert len(long_tracker) <= len(short_tracker) + 8

        def fill(total_points):
            store = TimeSeriesStore(capacity_per_series=1 << 20,
                                    retention_s=60.0)
            for i in range(total_points):
                store.append("gauge", float(i), 1.0)
            return len(store)

        assert fill(3000) == fill(300)

    def test_recent_windows_exact_after_compaction(self):
        _, compacted = drive_tracker(2000.0, retention_s=50.0)
        _, full = drive_tracker(2000.0, retention_s=None)
        assert len(compacted) < len(full)
        for start, end in ((1990.0, 2000.0), (1950.5, 1999.5),
                           (1960.25, 1960.75)):
            assert compacted.busy_time(start, end) == pytest.approx(
                full.busy_time(start, end))

    def test_total_exact_after_compaction(self):
        # Compaction checkpoints the folded-away mass, so the
        # since-origin total never drifts.
        _, compacted = drive_tracker(2000.0, retention_s=50.0)
        _, full = drive_tracker(2000.0, retention_s=None)
        assert compacted.busy_time() == pytest.approx(full.busy_time())
        assert compacted.utilization() == pytest.approx(full.utilization())

    def test_busy_integrals_matches_busy_time(self):
        _, tracker = drive_tracker(100.0, retention_s=None)
        times = [0.0, 10.0, 33.25, 50.0, 99.5, 100.0]
        integrals = tracker.busy_integrals(times)
        for t, integral in zip(times, integrals):
            assert integral == pytest.approx(tracker.busy_time(0.0, t))

    def test_invalid_retention_rejected(self):
        env = Environment()
        tracker = BusyTracker(env, units=1)
        with pytest.raises(SimulationError):
            tracker.set_retention(0.0)
        with pytest.raises(SimulationError):
            BusyTracker(env, units=1, retention_s=-1.0)


class TestBusyTrackerValidation:
    def test_set_busy_negative_rejected(self):
        env = Environment()
        tracker = BusyTracker(env, units=2, name="disk0")
        with pytest.raises(SimulationError, match="disk0"):
            tracker.set_busy(-1)

    def test_add_below_zero_rejected(self):
        env = Environment()
        tracker = BusyTracker(env, units=2)
        tracker.add(1)
        with pytest.raises(SimulationError):
            tracker.remove(2)
        # The failed call must not have corrupted the count.
        assert tracker.busy == 1

    def test_set_busy_records_change(self):
        env = Environment()
        tracker = BusyTracker(env, units=4)

        def proc():
            tracker.set_busy(3)
            yield env.timeout(10.0)
            tracker.set_busy(0)
            yield env.timeout(10.0)

        env.run(until=env.process(proc()))
        assert tracker.busy_time() == pytest.approx(30.0)


class TestServeWiresTrackerRetention:
    def test_job_server_propagates_telemetry_horizon(self):
        from repro.api.context import AnalyticsContext
        from repro.cluster import hdd_cluster
        from repro.serve import JobServer, TraceArrivals, wordcount_template
        from repro.trace.telemetry import TelemetryRegistry, TelemetrySampler

        cluster = hdd_cluster(num_machines=2, num_disks=2)
        ctx = AnalyticsContext(cluster, engine="monospark")
        registry = TelemetryRegistry(retention_s=90.0)
        sampler = TelemetrySampler(ctx.engine.env, registry, interval_s=1.0)
        server = JobServer(ctx, policy="fifo", telemetry=sampler)
        server.add_tenant("t")
        template = wordcount_template(ctx, num_blocks=2, block_mb=4.0)
        server.add_workload("t", template, TraceArrivals([0.0]))
        server.run()

        machine = cluster.machines[0]
        assert machine.cpu.tracker.retention_s == 90.0
        assert all(d.tracker.retention_s == 90.0 for d in machine.disks)
        assert all(t.retention_s == 90.0
                   for t in cluster.network.rx_trackers.values())
        assert all(t.retention_s == 90.0
                   for t in cluster.network.tx_trackers.values())


class TestTimeSeriesWindowing:
    def test_window_is_inclusive_and_bisected(self):
        store = TimeSeriesStore()
        for t in range(10):
            store.append("m", float(t), float(t) * 2.0)
        assert store.window("m", 3.0, 6.0) == [
            (3.0, 6.0), (4.0, 8.0), (5.0, 10.0), (6.0, 12.0)]
        assert store.window("m", 3.5, 3.9) == []
        assert store.window("m", -5.0, 0.0) == [(0.0, 0.0)]
        assert store.window("m", 9.0, 50.0) == [(9.0, 18.0)]

    def test_window_respects_eviction_offset(self):
        # Capacity eviction advances the series' logical start; the
        # bisected window must not resurrect evicted points.
        store = TimeSeriesStore(capacity_per_series=4)
        for t in range(10):
            store.append("m", float(t), float(t))
        assert store.points("m") == [(6.0, 6.0), (7.0, 7.0),
                                     (8.0, 8.0), (9.0, 9.0)]
        assert store.window("m", 0.0, 7.0) == [(6.0, 6.0), (7.0, 7.0)]

    def test_aggregates_over_window(self):
        store = TimeSeriesStore()
        for t in range(20):
            store.append("m", float(t), float(t))
        assert store.aggregate("m", "mean", window_s=4.0) == pytest.approx(
            (15 + 16 + 17 + 18 + 19) / 5.0)
        assert store.aggregate("m", "p50", window_s=4.0) == pytest.approx(17.0)
        assert store.aggregate("m", "rate", window_s=4.0) == pytest.approx(1.0)

    def test_out_of_order_append_rejected(self):
        store = TimeSeriesStore()
        store.append("m", 5.0, 1.0)
        with pytest.raises(ClarityError):
            store.append("m", 4.0, 1.0)


class TestSharedPercentile:
    def test_interpolates(self):
        values = [1.0, 2.0, 3.0, 4.0]
        assert percentile(values, 0) == 1.0
        assert percentile(values, 100) == 4.0
        assert percentile(values, 50) == pytest.approx(2.5)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            percentile([], 50)

    def test_bad_quantile_rejected(self):
        for q in (-1.0, 101.0, float("nan")):
            with pytest.raises(ValueError):
                percentile([1.0], q)

    def test_both_call_sites_share_the_helper(self):
        # The metrics and tsdb percentile paths must be the one stats
        # helper, not parallel reimplementations that can drift.
        from repro.clarity import tsdb
        from repro.metrics import utilization
        assert utilization.percentile is percentile
        assert tsdb._shared_percentile is percentile

    def test_tsdb_wraps_errors_as_clarity(self):
        store = TimeSeriesStore()
        store.append("m", 0.0, 1.0)
        with pytest.raises(ClarityError):
            store.aggregate("m", "p200", window_s=1.0)
