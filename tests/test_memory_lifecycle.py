"""Memory lifecycle tests: nothing leaks across jobs."""

import pytest

from repro.cluster import ssd_cluster, hdd_cluster
from repro.workloads.ml import MlWorkload, make_ml_context, run_ml_workload


class TestInMemoryShuffleLifecycle:
    def test_ml_iterations_release_shuffle_memory(self):
        """Each iteration's in-memory shuffle is freed when its job ends:
        memory does not creep upward across iterations."""
        cluster = ssd_cluster(num_machines=4)
        ctx = make_ml_context(cluster, "monospark",
                              MlWorkload(num_row_blocks=16))
        run_ml_workload(ctx, iterations=1)
        used_after_one = sum(m.memory.used for m in cluster.machines)
        run_ml_workload(ctx, iterations=3)
        used_after_four = sum(m.memory.used for m in cluster.machines)
        # The cached matrix stays; per-iteration shuffle data does not.
        assert used_after_four == pytest.approx(used_after_one, rel=0.01)

    @pytest.mark.parametrize("engine", ["spark", "monospark"])
    def test_memory_returns_to_baseline_after_jobs(self, engine):
        cluster = hdd_cluster(num_machines=2)
        from repro.api import AnalyticsContext
        ctx = AnalyticsContext(cluster, engine=engine)
        for _ in range(3):
            (ctx.parallelize(range(100), num_partitions=8)
                .map(lambda x: (x % 5, 1))
                .reduce_by_key(lambda a, b: a + b)
                .collect())
        # No cached RDDs, no in-memory shuffles: usage returns to zero.
        assert all(m.memory.used == pytest.approx(0.0, abs=1.0)
                   for m in cluster.machines)

    def test_peak_memory_recorded(self):
        cluster = ssd_cluster(num_machines=2)
        ctx = make_ml_context(cluster, "monospark",
                              MlWorkload(num_row_blocks=8))
        run_ml_workload(ctx, iterations=1)
        assert any(m.memory.peak > 0 for m in cluster.machines)
