"""Tests for the §7 auto-configuration sweep helper."""

import pytest

from repro import GB
from repro.autoconf import ConcurrencySweep, sweep_spark_concurrency
from repro.cluster import hdd_cluster
from repro.workloads.scaling import scaled_memory_overrides
from repro.workloads.sortgen import SortWorkload, generate_sort_input, run_sort


class TestConcurrencySweep:
    def test_summary_properties(self):
        sweep = ConcurrencySweep(spark_seconds={2: 20.0, 8: 10.0, 16: 15.0},
                                 monospark_seconds=9.0)
        assert sweep.best_spark == 10.0
        assert sweep.best_spark_slots == 8
        assert sweep.worst_spark == 20.0
        assert sweep.monospark_vs_best_spark == pytest.approx(0.9)


class TestSweepEndToEnd:
    def test_sweep_runs_all_configs(self):
        workload = SortWorkload(total_bytes=4 * GB, values_per_key=25,
                                num_map_tasks=32)

        def make_cluster():
            cluster = hdd_cluster(num_machines=2,
                                  **scaled_memory_overrides(0.01))
            generate_sort_input(cluster, workload)
            return cluster

        sweep = sweep_spark_concurrency(
            make_cluster, lambda ctx: run_sort(ctx, workload),
            slot_options=(4, 8))
        assert set(sweep.spark_seconds) == {4, 8}
        assert sweep.monospark_seconds > 0
        assert all(seconds > 0 for seconds in sweep.spark_seconds.values())
