"""Unit tests for the §6.6 Spark-based models."""

import pytest

from repro.api import AnalyticsContext
from repro.cluster import hdd_cluster
from repro.config import MB
from repro.datamodel import Partition
from repro.errors import ModelError
from repro.model.sparkmodel import (AttributionEstimate,
                                    slot_share_stage_usage,
                                    spark_stage_profiles, true_stage_usage)


def spark_run(blocks=6):
    cluster = hdd_cluster(num_machines=2)
    payloads = [Partition.from_records([(i, i)], record_count=1,
                                       data_bytes=32 * MB)
                for i in range(blocks)]
    cluster.dfs.create_file("input", payloads, [32 * MB] * blocks)
    ctx = AnalyticsContext(cluster, engine="spark")
    (ctx.text_file("input")
        .map(lambda kv: (kv[0] % 2, 1), size_ratio=1.0)
        .reduce_by_key(lambda a, b: a + b, num_partitions=2)
        .collect())
    return ctx


class TestSparkStageProfiles:
    def test_profiles_built_from_usage_records(self):
        ctx = spark_run()
        profiles = spark_stage_profiles(ctx.metrics,
                                        ctx.last_result.job_id)
        assert len(profiles) == 2
        assert all(p.compute_s > 0 for p in profiles)
        map_stage = max(profiles, key=lambda p: p.total_disk_bytes)
        assert map_stage.total_disk_bytes >= 6 * 32 * MB

    def test_deserialization_not_separable(self):
        """The §6.3 limitation: Spark profiles carry no deser split."""
        ctx = spark_run()
        profiles = spark_stage_profiles(ctx.metrics,
                                        ctx.last_result.job_id)
        assert all(p.input_deserialize_s == 0.0 for p in profiles)
        assert all(not p.reads_dfs_input for p in profiles)

    def test_missing_job_rejected(self):
        ctx = spark_run()
        with pytest.raises(ModelError):
            spark_stage_profiles(ctx.metrics, 99)


class TestAttribution:
    def test_true_usage_from_task_records(self):
        ctx = spark_run()
        job = ctx.last_result.job_id
        stage0 = ctx.metrics.stage_records(job)[0].stage_id
        truth = true_stage_usage(ctx.metrics, job, stage0)
        assert truth.cpu_s > 0

    def test_single_job_cpu_share_is_accurate(self):
        """With one job, slot-share CPU attribution has nothing to
        confuse (it is concurrency that breaks it, Fig 16)."""
        ctx = spark_run(blocks=8)
        job = ctx.last_result.job_id
        for stage in ctx.metrics.stage_records(job):
            truth = true_stage_usage(ctx.metrics, job, stage.stage_id)
            estimate = slot_share_stage_usage(ctx.metrics, ctx.cluster,
                                              job, stage.stage_id)
            assert estimate.relative_errors(truth)["cpu_s"] < 0.05

    def test_cache_hides_logical_io_from_machine_observation(self):
        """§2.2 in numbers: the task logically wrote its output, but the
        machine-level disk log shows (almost) nothing -- the OS buffer
        cache absorbed it, so even single-job external observation
        under-counts Spark's I/O."""
        ctx = spark_run(blocks=8)
        job = ctx.last_result.job_id
        stages = ctx.metrics.stage_records(job)
        map_stage = max(stages, key=lambda s: s.num_tasks)
        truth = true_stage_usage(ctx.metrics, job, map_stage.stage_id)
        estimate = slot_share_stage_usage(ctx.metrics, ctx.cluster, job,
                                          map_stage.stage_id)
        assert estimate.disk_bytes < truth.disk_bytes * 0.75

    def test_relative_errors_skip_zero_truth(self):
        estimate = AttributionEstimate(cpu_s=1.0)
        truth = AttributionEstimate(cpu_s=2.0, disk_bytes=0.0)
        errors = estimate.relative_errors(truth)
        assert errors == {"cpu_s": 0.5}
