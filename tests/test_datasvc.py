"""Data service: placement, checksums, and engine integration.

The disaggregated data tier must be *transparent* to the computation:
both engines produce byte-identical results with and without it, map
output registers on storage-node machine ids (the lineage index never
points at compute), and DFS output blocks land on storage replicas.
Fault behavior is covered separately in ``test_datasvc_faults.py``.
"""

import pytest

from repro.api import AnalyticsContext
from repro.cluster import hdd_cluster
from repro.datasvc import DataService
from repro.datasvc.service import block_checksum
from repro.errors import ConfigError
from repro.serve.admission import CostEstimator
from repro.serve.slo import ServeReport
from repro.trace.telemetry import TelemetryRegistry

ENGINES = ("monospark", "spark")


def make_ctx(engine, seed=1, machines=4, nodes=3, replication=2,
             disaggregated=True):
    cluster = hdd_cluster(num_machines=machines, seed=seed)
    service = None
    options = {}
    if disaggregated:
        service = DataService(cluster, num_nodes=nodes,
                              replication=replication)
        options["datasvc"] = service
    return AnalyticsContext(cluster, engine=engine, **options), service


def word_count(ctx, records=2000, partitions=8):
    rdd = ctx.parallelize([f"w{i % 13} w{i % 7}" for i in range(records)],
                          num_partitions=partitions)
    return sorted(rdd.flat_map(lambda line: line.split())
                     .map(lambda word: (word, 1))
                     .reduce_by_key(lambda a, b: a + b)
                     .collect())


class TestConstruction:
    def test_rejects_zero_nodes(self):
        cluster = hdd_cluster(num_machines=2)
        with pytest.raises(ConfigError):
            DataService(cluster, num_nodes=0)

    def test_rejects_zero_replication(self):
        cluster = hdd_cluster(num_machines=2)
        with pytest.raises(ConfigError):
            DataService(cluster, num_nodes=2, replication=0)

    def test_replication_clamped_to_node_count(self):
        cluster = hdd_cluster(num_machines=2)
        service = DataService(cluster, num_nodes=2, replication=5)
        assert service.replication == 2

    def test_storage_ids_start_above_compute(self):
        cluster = hdd_cluster(num_machines=4)
        service = DataService(cluster, num_nodes=3)
        assert [n.machine_id for n in service.nodes] == [4, 5, 6]
        assert service.owns_machine(4) and service.owns_machine(6)
        assert not service.owns_machine(3) and not service.owns_machine(7)


class TestChecksum:
    def test_deterministic(self):
        assert block_checksum("b0", 10.0, 512.0) \
            == block_checksum("b0", 10.0, 512.0)

    def test_sensitive_to_every_field(self):
        base = block_checksum("b0", 10.0, 512.0)
        assert block_checksum("b1", 10.0, 512.0) != base
        assert block_checksum("b0", 11.0, 512.0) != base
        assert block_checksum("b0", 10.0, 513.0) != base


@pytest.mark.parametrize("engine", ENGINES)
class TestEngineIntegration:
    def test_results_match_colocated(self, engine):
        colocated_ctx, _ = make_ctx(engine, disaggregated=False)
        ctx, service = make_ctx(engine)
        assert word_count(ctx) == word_count(colocated_ctx)
        stats = service.stats()
        assert stats["puts"] > 0 and stats["fetches"] > 0
        assert stats["bytes_in"] > 0 and stats["bytes_out"] > 0

    def test_map_output_registers_on_storage_tier(self, engine):
        ctx, service = make_ctx(engine)
        word_count(ctx)
        registry = ctx.engine.map_outputs
        shuffle_ids = list(registry.shuffle_ids())
        assert shuffle_ids
        for shuffle_id in shuffle_ids:
            for reduce_index in range(8):
                for bucket in registry.buckets_for_reduce(shuffle_id,
                                                          reduce_index):
                    assert service.owns_machine(bucket.machine_id)
                    assert bucket.disk_index is None

    def test_compute_crash_invalidates_nothing(self, engine):
        """The acceptance mechanism: the lineage index never points at
        compute machines, so invalidating one drops zero map outputs."""
        ctx, _ = make_ctx(engine)
        word_count(ctx)
        assert ctx.engine.map_outputs.invalidate_machine(1) == []

    def test_dfs_output_lands_on_storage_replicas(self, engine):
        ctx, service = make_ctx(engine)
        rdd = ctx.parallelize([f"r{i}" for i in range(64)],
                              num_partitions=4)
        rdd.save_as_text_file("out.txt")
        blocks = ctx.cluster.dfs.get_file("out.txt").blocks
        assert len(blocks) == 4
        for block in blocks:
            assert all(service.owns_machine(machine_id)
                       for machine_id, _disk in block.replicas)
            stored = service.block(block.block_id)
            assert stored is not None
            assert len([r for r in stored.replicas if r.valid]) \
                == service.replication

    def test_every_put_replicates(self, engine):
        ctx, service = make_ctx(engine, replication=2)
        word_count(ctx)
        stats = service.stats()
        assert stats["replications"] == stats["puts"] \
            * (service.replication - 1)

    def test_placement_skips_crashed_node(self, engine):
        ctx, service = make_ctx(engine)
        service.crash_node(0)
        word_count(ctx)
        held = {replica.node_index
                for block_id in list(service._blocks)
                for replica in service.block(block_id).replicas
                if replica.valid}
        assert 0 not in held
        assert held <= {1, 2}

    def test_deterministic_across_runs(self, engine):
        first_ctx, first_svc = make_ctx(engine, seed=3)
        first = word_count(first_ctx)
        second_ctx, second_svc = make_ctx(engine, seed=3)
        second = word_count(second_ctx)
        assert first == second
        assert first_svc.stats() == second_svc.stats()
        assert first_ctx.last_result.duration \
            == second_ctx.last_result.duration


class TestObservability:
    def test_telemetry_registers_data_tier_series(self):
        ctx, _ = make_ctx("monospark")
        registry = TelemetryRegistry()
        ctx.engine.register_telemetry(registry)
        registry.sample(0.0)
        names = {name for name, _labels in registry.store.series()}
        assert "repro_datasvc_integrity_faults" in names
        assert "repro_datasvc_live_nodes" in names
        assert "repro_datasvc_write_behind_bytes" in names
        assert "repro_datasvc_disk_queue_depth" in names
        assert "repro_cache_invalidated_partitions" in names

    def test_serve_report_renders_data_tier_section(self):
        ctx, service = make_ctx("monospark")
        word_count(ctx)
        service.corrupt_block(0)
        report = ServeReport(engine_name="monospark", duration_s=1.0)
        report.attach_datasvc(service)
        text = report.format()
        assert "Data service (disaggregated shuffle/storage)" in text
        assert "puts" in text
        # Corruption is only *detected* on read; no suspicions yet.
        assert report.datasvc_stats["integrity_faults"] == 0

    def test_cost_estimator_prices_lost_storage_nodes(self):
        ctx, service = make_ctx("monospark")
        word_count(ctx)
        estimator = CostEstimator(ctx.engine)
        estimator.observe("wc", ctx.metrics, ctx.last_result)
        healthy = estimator.estimate("wc")
        service.crash_node(0)
        degraded = estimator.estimate("wc")
        assert degraded == pytest.approx(healthy * 3 / 2)
