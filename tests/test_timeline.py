"""Tests for the ASCII monotask timeline."""

import pytest

from repro import AnalyticsContext, MB, hdd_cluster
from repro.datamodel import Partition
from repro.errors import ModelError
from repro.metrics import render_timeline


def run_job():
    cluster = hdd_cluster(num_machines=1)
    payloads = [Partition.from_records([(i, i)], record_count=1,
                                       data_bytes=64 * MB)
                for i in range(8)]
    cluster.dfs.create_file("input", payloads, [64 * MB] * 8)
    ctx = AnalyticsContext(cluster, engine="monospark")
    ctx.text_file("input").save_as_text_file("out")
    return ctx


class TestRenderTimeline:
    def test_contains_all_lanes(self):
        ctx = run_job()
        text = render_timeline(ctx.metrics, ctx.last_result.job_id,
                               machine_id=0, width=40)
        assert "cpu" in text
        assert "disk0" in text
        assert "disk1" in text

    def test_phases_visible(self):
        ctx = run_job()
        text = render_timeline(ctx.metrics, ctx.last_result.job_id,
                               machine_id=0, width=60)
        assert "r" in text  # input reads
        assert "o" in text  # output writes
        assert "C" in text  # compute

    def test_width_respected(self):
        ctx = run_job()
        text = render_timeline(ctx.metrics, ctx.last_result.job_id,
                               width=30)
        lane_lines = [line for line in text.splitlines() if "|" in line]
        for line in lane_lines:
            inner = line.split("|")[1]
            assert len(inner) == 30

    def test_invalid_width(self):
        ctx = run_job()
        with pytest.raises(ModelError):
            render_timeline(ctx.metrics, ctx.last_result.job_id, width=5)

    def test_spark_job_has_no_timeline(self):
        cluster = hdd_cluster(num_machines=1)
        ctx = AnalyticsContext(cluster, engine="spark")
        ctx.parallelize(range(4), num_partitions=2).count()
        with pytest.raises(ModelError):
            render_timeline(ctx.metrics, ctx.last_result.job_id)

    def test_stage_filter(self):
        ctx = run_job()
        text = render_timeline(ctx.metrics, ctx.last_result.job_id,
                               stage_id=0, width=30)
        assert "job 0" in text
