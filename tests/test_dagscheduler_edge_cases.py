"""Extra compiler edge cases: self-joins, diamonds, repartition chains."""

import pytest

from repro.api import AnalyticsContext
from repro.cluster import hdd_cluster

ENGINES = ["spark", "monospark"]


def ctx_for(engine="monospark"):
    return AnalyticsContext(hdd_cluster(num_machines=2), engine=engine)


@pytest.mark.parametrize("engine", ENGINES)
class TestLineageShapes:
    def test_self_join(self, engine):
        ctx = ctx_for(engine)
        rdd = ctx.parallelize([("a", 1), ("b", 2)], num_partitions=2)
        out = sorted(rdd.join(rdd, num_partitions=2).collect())
        assert out == [("a", (1, 1)), ("b", (2, 2))]

    def test_diamond_reuses_shuffle_output(self, engine):
        """Two consumers of one shuffled RDD share its map stage."""
        ctx = ctx_for(engine)
        base = (ctx.parallelize([("a", 1), ("b", 2), ("a", 3)],
                                num_partitions=2)
                .reduce_by_key(lambda a, b: a + b, num_partitions=2))
        left = base.map_values(lambda v: v * 10)
        right = base.map_values(lambda v: v + 1)
        out = sorted(left.join(right, num_partitions=2).collect())
        assert out == [("a", (40, 5)), ("b", (20, 3))]

    def test_repartition_then_sort(self, engine):
        ctx = ctx_for(engine)
        out = (ctx.parallelize([(i % 7, i) for i in range(50)],
                               num_partitions=3)
               .repartition(6)
               .sort_by_key(num_partitions=4,
                            boundaries=[2, 4, 6])
               .collect())
        assert [k for k, _ in out] == sorted(i % 7 for i in range(50))

    def test_join_after_union(self, engine):
        ctx = ctx_for(engine)
        left_a = ctx.parallelize([("x", 1)], num_partitions=1)
        left_b = ctx.parallelize([("y", 2)], num_partitions=1)
        right = ctx.parallelize([("x", "r1"), ("y", "r2")],
                                num_partitions=2)
        out = sorted(left_a.union(left_b)
                     .join(right, num_partitions=2).collect())
        assert out == [("x", (1, "r1")), ("y", (2, "r2"))]

    def test_deep_narrow_chain(self, engine):
        ctx = ctx_for(engine)
        rdd = ctx.parallelize(range(10), num_partitions=2)
        for _ in range(20):
            rdd = rdd.map(lambda x: x + 1)
        assert sorted(rdd.collect()) == [x + 20 for x in range(10)]
        # Still a single stage: all twenty maps fused.
        plan = ctx.compile(rdd)
        assert len(plan.stages) == 1
        assert len(plan.stages[0].tasks[0].chain) == 20


class TestStageStructure:
    def test_diamond_plan_has_shared_parent(self):
        ctx = ctx_for()
        base = (ctx.parallelize([("a", 1)], num_partitions=2)
                .reduce_by_key(lambda a, b: a + b, num_partitions=2))
        joined = base.join(base.map_values(lambda v: v), num_partitions=2)
        plan = ctx.compile(joined)
        # base's map stage compiled once per side of the join (sides have
        # distinct shuffle ids) but base's own upstream is shared.
        stage_ids = [s.stage_id for s in plan.stages]
        assert len(stage_ids) == len(set(stage_ids))
        final = plan.final_stage
        assert len(final.tasks[0].input.deps) == 2
