"""Unit tests for RNG streams and configuration validation."""

import pytest

from repro.config import GB, HDD, MB, SSD, CostModel, DiskSpec, MachineSpec
from repro.errors import ConfigError
from repro.simulator import RngStreams


class TestRngStreams:
    def test_same_seed_same_stream(self):
        a = RngStreams(7).stream("disk")
        b = RngStreams(7).stream("disk")
        assert [a.random() for _ in range(5)] == [b.random() for _ in range(5)]

    def test_different_names_are_independent(self):
        streams = RngStreams(7)
        a = streams.stream("disk")
        b = streams.stream("network")
        assert [a.random() for _ in range(5)] != [b.random() for _ in range(5)]

    def test_different_seeds_differ(self):
        a = RngStreams(1).stream("x")
        b = RngStreams(2).stream("x")
        assert a.random() != b.random()

    def test_stream_is_cached(self):
        streams = RngStreams(0)
        assert streams.stream("x") is streams.stream("x")

    def test_fork_is_deterministic_and_independent(self):
        root = RngStreams(3)
        child1 = root.fork("worker")
        child2 = RngStreams(3).fork("worker")
        assert child1.stream("a").random() == child2.stream("a").random()
        assert child1.seed != root.seed


class TestSpecs:
    def test_default_machine_spec(self):
        spec = MachineSpec()
        assert spec.cores == 8
        assert len(spec.disks) == 2

    def test_with_disks(self):
        spec = MachineSpec().with_disks(SSD)
        assert spec.disks == (SSD,)

    def test_invalid_cores(self):
        with pytest.raises(ConfigError):
            MachineSpec(cores=0)

    def test_no_disks_rejected(self):
        with pytest.raises(ConfigError):
            MachineSpec(disks=())

    def test_invalid_disk_throughput(self):
        with pytest.raises(ConfigError):
            DiskSpec(kind="bad", throughput_bps=0, seek_time_s=0.0)

    def test_invalid_disk_concurrency(self):
        with pytest.raises(ConfigError):
            DiskSpec(kind="bad", throughput_bps=1, seek_time_s=0.0,
                     max_concurrency=0)

    def test_hdd_ssd_presets(self):
        assert HDD.max_concurrency == 1
        assert SSD.max_concurrency == 4
        assert SSD.throughput_bps > HDD.throughput_bps

    def test_cost_model_validation(self):
        with pytest.raises(ConfigError):
            CostModel(serialize_s_per_byte=-1.0)

    def test_cost_model_defaults_positive(self):
        cost = CostModel()
        assert cost.deserialize_s_per_byte > 0
        assert cost.task_setup_s > 0
