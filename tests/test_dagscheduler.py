"""Unit tests for lineage -> stage compilation."""

import pytest

from repro.api import (AnalyticsContext, CollectOutput, DfsInput, DfsOutput,
                       LocalInput, ShuffleInput, ShuffleOutput)
from repro.api.ops import CombineByKeyOp, FilterOp, MapOp, SortOp
from repro.cluster import hdd_cluster
from repro.config import MB
from repro.datamodel import Partition
from repro.errors import PlanError


def make_ctx(machines=2, engine="monospark"):
    return AnalyticsContext(hdd_cluster(num_machines=machines),
                            engine=engine)


def make_dfs_ctx(blocks=4, machines=2):
    cluster = hdd_cluster(num_machines=machines)
    payloads = [Partition.from_records([(i, i)], record_count=1,
                                       data_bytes=MB) for i in range(blocks)]
    cluster.dfs.create_file("input", payloads, [MB] * blocks)
    return AnalyticsContext(cluster, engine="monospark")


class TestNarrowCompilation:
    def test_single_stage_from_parallelize(self):
        ctx = make_ctx()
        rdd = ctx.parallelize(range(10), num_partitions=4).map(lambda x: x)
        plan = ctx.compile(rdd)
        assert len(plan.stages) == 1
        stage = plan.stages[0]
        assert stage.num_tasks == 4
        assert all(isinstance(t.input, LocalInput) for t in stage.tasks)
        assert all(isinstance(t.output, CollectOutput) for t in stage.tasks)
        assert all(len(t.chain) == 1 for t in stage.tasks)

    def test_narrow_ops_fused(self):
        ctx = make_ctx()
        rdd = (ctx.parallelize(range(10), num_partitions=2)
               .map(lambda x: x).filter(lambda x: True).map(lambda x: x))
        plan = ctx.compile(rdd)
        assert len(plan.stages) == 1
        assert len(plan.stages[0].tasks[0].chain) == 3

    def test_dfs_input_with_locality(self):
        ctx = make_dfs_ctx(blocks=4)
        plan = ctx.compile(ctx.text_file("input"))
        tasks = plan.stages[0].tasks
        assert len(tasks) == 4
        for task in tasks:
            assert isinstance(task.input, DfsInput)
            assert task.preferred_machines == task.input.block.machines()

    def test_save_output_spec(self):
        ctx = make_dfs_ctx()
        plan = ctx.compile(ctx.text_file("input"),
                           DfsOutput(file_name="out"))
        assert all(isinstance(t.output, DfsOutput)
                   for t in plan.stages[0].tasks)


class TestShuffleCompilation:
    def test_two_stage_job(self):
        ctx = make_ctx()
        rdd = (ctx.parallelize([("a", 1)] * 10, num_partitions=4)
               .reduce_by_key(lambda a, b: a + b, num_partitions=3))
        plan = ctx.compile(rdd)
        assert len(plan.stages) == 2
        map_stage, reduce_stage = plan.stages
        assert map_stage.num_tasks == 4
        assert reduce_stage.num_tasks == 3
        assert reduce_stage.parent_stage_ids == [map_stage.stage_id]
        assert isinstance(map_stage.tasks[0].output, ShuffleOutput)
        # Map-side combine op appended to the map chain.
        assert any(isinstance(op, CombineByKeyOp)
                   for op in map_stage.tasks[0].chain)
        reduce_input = reduce_stage.tasks[0].input
        assert isinstance(reduce_input, ShuffleInput)
        assert reduce_input.deps[0].num_maps == 4
        # Reduce-side merge op leads the reduce chain.
        assert isinstance(reduce_stage.tasks[0].chain[0], CombineByKeyOp)

    def test_no_map_side_combine_for_sort(self):
        ctx = make_ctx()
        rdd = (ctx.parallelize([(i, i) for i in range(20)], num_partitions=2)
               .sort_by_key(num_partitions=4))
        plan = ctx.compile(rdd)
        map_stage, reduce_stage = plan.stages
        assert not any(isinstance(op, CombineByKeyOp)
                       for op in map_stage.tasks[0].chain)
        assert isinstance(reduce_stage.tasks[0].chain[0], SortOp)

    def test_join_compiles_three_stages(self):
        ctx = make_ctx()
        left = ctx.parallelize([("a", 1)], num_partitions=2)
        right = ctx.parallelize([("a", 2)], num_partitions=2)
        plan = ctx.compile(left.join(right, num_partitions=2))
        assert len(plan.stages) == 3
        reduce_stage = plan.stages[-1]
        deps = reduce_stage.tasks[0].input.deps
        assert len(deps) == 2
        assert {d.side for d in deps} == {0, 1}
        assert deps[0].shuffle_id != deps[1].shuffle_id
        assert reduce_stage.tasks[0].input.tagged

    def test_chained_shuffles(self):
        ctx = make_ctx()
        rdd = (ctx.parallelize([("a", 1)] * 4, num_partitions=2)
               .reduce_by_key(lambda a, b: a + b)
               .map(lambda kv: (kv[1], kv[0]))
               .group_by_key(num_partitions=2))
        plan = ctx.compile(rdd)
        assert len(plan.stages) == 3
        # Parents precede children.
        seen = set()
        for stage in plan.stages:
            assert all(p in seen for p in stage.parent_stage_ids)
            seen.add(stage.stage_id)

    def test_shuffle_ids_unique_across_jobs(self):
        ctx = make_ctx()
        rdd1 = ctx.parallelize([("a", 1)], num_partitions=1).group_by_key()
        rdd2 = ctx.parallelize([("a", 1)], num_partitions=1).group_by_key()
        plan1 = ctx.compile(rdd1)
        plan2 = ctx.compile(rdd2)
        sid1 = plan1.stages[0].tasks[0].output.shuffle_id
        sid2 = plan2.stages[0].tasks[0].output.shuffle_id
        assert sid1 != sid2


class TestCacheCompilation:
    def test_cache_spec_recorded(self):
        ctx = make_ctx()
        rdd = ctx.parallelize(range(4), num_partitions=2).map(lambda x: x)
        rdd.cache()
        downstream = rdd.filter(lambda x: True)
        plan = ctx.compile(downstream)
        task = plan.stages[0].tasks[0]
        assert task.cache is not None
        assert task.cache.rdd_id == rdd.rdd_id
        assert task.cache.after_ops == 1

    def test_materialized_cache_short_circuits(self):
        ctx = make_ctx()
        rdd = ctx.parallelize(range(8), num_partitions=2).map(lambda x: x + 1)
        rdd.cache()
        rdd.collect()  # materializes
        plan = ctx.compile(rdd.filter(lambda x: x > 0))
        task = plan.stages[0].tasks[0]
        from repro.api.plan import CachedInput
        assert isinstance(task.input, CachedInput)
        assert len(task.chain) == 1  # only the filter

    def test_two_cache_points_rejected(self):
        ctx = make_ctx()
        a = ctx.parallelize(range(4), num_partitions=1).map(lambda x: x)
        a.cache()
        b = a.map(lambda x: x)
        b.cache()
        with pytest.raises(PlanError):
            ctx.compile(b.map(lambda x: x))


class TestPlanValidation:
    def test_compile_count_output(self):
        ctx = make_ctx()
        plan = ctx.compile(ctx.parallelize(range(4), num_partitions=2),
                           CollectOutput(count_only=True))
        assert plan.stages[0].tasks[0].output.count_only
