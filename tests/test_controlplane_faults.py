"""Injector-driven driver faults under the CI fault matrix.

The fault-matrix CI job runs this file under ``REPRO_TEST_SEED`` 0/1/2:
every scenario must hold for each seed offset, so the assertions are
invariants (nothing lost with failover on, exactly-once accounting),
never exact counts.
"""

import os

import pytest

from repro.api.context import AnalyticsContext
from repro.cluster import hdd_cluster
from repro.controlplane import ControlPlane, ControlPlanePolicy
from repro.faults import (DriverCrash, DriverPartition, FaultInjector,
                          FaultPlan, random_plan)
from repro.serve import PoissonArrivals, wordcount_template
from repro.simulator.rng import RngStreams

SEED_OFFSET = int(os.environ.get("REPRO_TEST_SEED", "0"))


def run_plane(plan, num_drivers=2, tenants=4, horizon=30.0,
              seed=2 + SEED_OFFSET, failover=True):
    cluster = hdd_cluster(num_machines=4, seed=seed)
    ctx = AnalyticsContext(cluster, engine="monospark")
    policy = ControlPlanePolicy(control_service_s=0.05,
                                checkpoint=failover, failover=failover)
    plane = ControlPlane(ctx, num_drivers=num_drivers, config=policy,
                         seed=seed)
    template = wordcount_template(ctx, num_blocks=2, block_mb=4.0)
    for i in range(tenants):
        plane.add_workload(f"tenant{i}", template,
                           PoissonArrivals(0.5, horizon_s=horizon))
    if plan is not None:
        FaultInjector(ctx.engine, plan).start()
    return plane.run()


def accounted(report) -> int:
    """Every submitted request must reach exactly one terminal state."""
    return sum(s.completed + s.failed + s.shed + s.lost
               for s in report.serve.stats)


class TestDriverCrashMatrix:
    @pytest.mark.parametrize("driver_id", [0, 1])
    def test_crash_either_driver_loses_nothing(self, driver_id):
        plan = FaultPlan([DriverCrash(at=12.0, driver_id=driver_id)])
        report = run_plane(plan)
        assert report.jobs_lost == 0
        assert accounted(report) == sum(s.submitted
                                        for s in report.serve.stats)
        assert report.counters["tenants_reassigned"] >= 1

    def test_crash_with_restart(self):
        plan = FaultPlan([DriverCrash(at=10.0, driver_id=1,
                                      restart_after=8.0)])
        report = run_plane(plan)
        assert report.jobs_lost == 0
        kinds = [e.kind for e in report.events]
        assert "driver-restart" in kinds
        assert kinds.index("driver-crash") < kinds.index("driver-restart")

    def test_partition_with_heal(self):
        plan = FaultPlan([DriverPartition(at=10.0, driver_id=0,
                                          heal_after=10.0)])
        report = run_plane(plan)
        assert report.jobs_lost == 0
        kinds = {e.kind for e in report.events}
        assert {"driver-partition", "partition-heal"} <= kinds

    def test_random_plan_with_driver_kinds(self):
        # Seeded sampling must produce a valid, reproducible mix of
        # driver crashes and partitions that the plane survives intact.
        rng = RngStreams(5 + SEED_OFFSET)
        plan = random_plan(
            rng, machine_ids=[0, 1, 2, 3], horizon_s=20.0, num_faults=2,
            restart_after=6.0,
            kind_weights={"driver-crash": 1.0, "driver-partition": 1.0},
            num_drivers=2)
        again = random_plan(
            RngStreams(5 + SEED_OFFSET), machine_ids=[0, 1, 2, 3],
            horizon_s=20.0, num_faults=2, restart_after=6.0,
            kind_weights={"driver-crash": 1.0, "driver-partition": 1.0},
            num_drivers=2)
        assert plan.faults == again.faults
        report = run_plane(plan)
        assert report.jobs_lost == 0
        assert accounted(report) == sum(s.submitted
                                        for s in report.serve.stats)
