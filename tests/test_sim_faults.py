"""Kernel-level fault semantics.

Covers the simulator pieces fault injection leans on: ``Timeout``
validation, interrupt delivery in every race it can lose, failure
propagation through ``AllOf``/``AnyOf``, and the event-accounting
regressions (superseded completion waiters used to pile O(n^2) dead
events into the heap; remote flows used to skip their latency charge).
"""

import pytest

from repro.config import MB, SSD
from repro.errors import Interrupted, SimulationError
from repro.simulator import Disk, Environment, Network
from repro.simulator.network import FLOW_LATENCY_S

BW = 100 * MB


def make_network(env, machines=4, bw=BW):
    net = Network(env)
    for machine in range(machines):
        net.register_machine(machine, up_bps=bw, down_bps=bw)
    return net


class TestTimeoutValidation:
    @pytest.mark.parametrize("delay", [float("inf"), float("-inf"),
                                       float("nan"), -1.0])
    def test_rejects_invalid_delay(self, delay):
        env = Environment()
        with pytest.raises(SimulationError):
            env.timeout(delay)

    def test_zero_delay_fires_immediately(self):
        env = Environment()
        env.run(until=env.timeout(0.0))
        assert env.now == 0.0


class TestInterruptSemantics:
    def test_interrupt_after_target_fired_but_unprocessed(self):
        # The target fires and the interrupt arrives in the same instant,
        # before the scheduler delivers either: the resume wins (it was
        # enqueued first) and the late interrupt must not corrupt the
        # already-completed process.
        env = Environment()
        trigger = env.event()
        log = []

        def body():
            yield trigger
            log.append("done")

        proc = env.process(body())
        env.run(until=env.timeout(1.0))  # park the process on `trigger`
        trigger.succeed()
        proc.interrupt(cause="late")
        env.run()
        assert log == ["done"]
        assert proc.triggered

    def test_interrupt_supersedes_pending_target(self):
        env = Environment()
        trigger = env.event()
        log = []

        def body():
            try:
                yield trigger
                log.append("resumed")
                yield env.timeout(10.0)
                log.append("slept")
            except Interrupted as exc:
                log.append(f"interrupted:{exc.cause}")

        proc = env.process(body())
        env.run(until=env.timeout(1.0))
        trigger.succeed()
        proc.interrupt(cause="race")
        env.run()
        # The fired trigger resumed the process first; the interrupt then
        # landed in the next wait (the 10s sleep), which never finished.
        assert log == ["resumed", "interrupted:race"]

    def test_interrupt_inside_all_of(self):
        env = Environment()
        e1, e2 = env.event(), env.event()
        caught = []

        def body():
            try:
                yield env.all_of([e1, e2])
            except Interrupted as exc:
                caught.append(exc.cause)

        proc = env.process(body())

        def driver():
            yield env.timeout(1.0)
            proc.interrupt(cause="crash")
            yield env.timeout(1.0)
            e1.succeed()
            e2.fail(SimulationError("late failure"))  # abandoned barrier

        env.process(driver())
        env.run()  # raises if the late failure were not defused
        assert caught == ["crash"]
        assert env.queue_size == 0

    def test_interrupt_inside_any_of(self):
        env = Environment()
        e1, e2 = env.event(), env.event()
        caught = []

        def body():
            try:
                yield env.any_of([e1, e2])
            except Interrupted as exc:
                caught.append(exc.cause)

        proc = env.process(body())

        def driver():
            yield env.timeout(1.0)
            proc.interrupt(cause="crash")
            yield env.timeout(1.0)
            e1.fail(SimulationError("loser fails late"))
            e2.succeed()

        env.process(driver())
        env.run()
        assert caught == ["crash"]
        assert env.queue_size == 0

    def test_double_interrupt_delivers_both_causes(self):
        env = Environment()
        causes = []

        def body():
            for _ in range(2):
                try:
                    yield env.timeout(10.0)
                except Interrupted as exc:
                    causes.append(exc.cause)
            return "ok"

        proc = env.process(body())

        def driver():
            yield env.timeout(1.0)
            proc.interrupt(cause="first")
            proc.interrupt(cause="second")

        env.process(driver())
        env.run()
        assert causes == ["first", "second"]
        assert proc.triggered and proc.value == "ok"

    def test_interrupting_completed_process_rejected(self):
        env = Environment()

        def body():
            yield env.timeout(1.0)

        proc = env.process(body())
        env.run()
        with pytest.raises(SimulationError):
            proc.interrupt()

    def test_abandoned_target_failure_is_defused(self):
        env = Environment()
        risky = env.event()
        log = []

        def body():
            try:
                yield risky
            except Interrupted:
                log.append("interrupted")
            yield env.timeout(3.0)
            log.append("moved on")

        proc = env.process(body())

        def driver():
            yield env.timeout(1.0)
            proc.interrupt()
            yield env.timeout(1.0)
            risky.fail(SimulationError("boom"))  # nobody is waiting anymore

        env.process(driver())
        env.run()  # would raise "boom" if the stale failure escaped
        assert log == ["interrupted", "moved on"]
        assert env.queue_size == 0


class TestRemoteFlowLatency:
    def test_one_byte_remote_transfer_pays_latency(self):
        # Regression: remote flows used to complete on bandwidth time
        # alone, never paying FLOW_LATENCY_S.
        env = Environment()
        net = make_network(env)
        env.run(until=net.transfer(0, 1, 1.0))
        assert env.now >= FLOW_LATENCY_S
        assert env.now == pytest.approx(FLOW_LATENCY_S + 1.0 / BW, rel=0.01)

    def test_latency_added_once_not_per_rebalance(self):
        env = Environment()
        net = make_network(env)
        done = env.all_of([net.transfer(0, 2, 50 * MB),
                           net.transfer(1, 2, 50 * MB)])
        env.run(until=done)
        # Shared receiver: 100 MB through 100 MB/s plus one latency each.
        assert env.now == pytest.approx(1.0 + FLOW_LATENCY_S, rel=0.01)


class TestWaiterAccounting:
    """Superseded completion waiters must be reused, not leaked."""

    def test_network_churn_schedules_linearly_and_drains(self):
        # 100 staggered flows force ~200 rebalances.  The old code
        # spawned a fresh completion process per rebalance, leaving
        # O(n^2) dead heap events; the persistent waiter keeps the
        # schedule linear (~6 events/flow measured) and the queue empty.
        env = Environment()
        net = make_network(env, machines=8)
        flows = []

        def driver():
            for i in range(100):
                flows.append(net.transfer(i % 4, 4 + (i % 4), 10 * MB))
                yield env.timeout(0.01)

        env.process(driver())
        env.run()
        assert all(flow.triggered for flow in flows)
        assert env.queue_size == 0
        assert env.events_scheduled < 100 * 15

    def test_ssd_churn_schedules_linearly_and_drains(self):
        env = Environment()
        disk = Disk(env, SSD)
        requests = []

        def driver():
            for _ in range(50):
                requests.append(disk.read(4 * MB))
                yield env.timeout(0.001)

        env.process(driver())
        env.run()
        assert all(request.triggered for request in requests)
        assert env.queue_size == 0
        assert env.events_scheduled < 50 * 10
