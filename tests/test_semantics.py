"""Unit tests for the shared task semantics layer."""

import pytest

from repro.api.ops import CombineByKeyOp, FilterOp, MapOp
from repro.api.partitioners import HashPartitioner
from repro.api.plan import (CacheSpec, CollectOutput, DfsOutput, LocalInput,
                            ShuffleOutput, TaskDescriptor)
from repro.config import CostModel, MB
from repro.datamodel import COMPRESSED, DESERIALIZED, PLAIN, Partition
from repro.engine.semantics import ResolvedInput, compute_task_work
from repro.errors import ExecutionError

COST = CostModel()


def descriptor(chain, output, cache=None):
    return TaskDescriptor(job_id=0, stage_id=0, index=0,
                          input=LocalInput(Partition.empty()),
                          chain=chain, output=output, cache=cache)


def resolved(records, count=None, nbytes=None, fmt=PLAIN):
    part = Partition.from_records(records, record_count=count,
                                  data_bytes=nbytes)
    return ResolvedInput(partition=part,
                         stored_bytes=fmt.stored_bytes(part.data_bytes),
                         fmt=fmt)


class TestComputeTaskWork:
    def test_collect_output(self):
        work = compute_task_work(
            descriptor([MapOp(lambda x: x * 2)], CollectOutput()),
            [resolved([1, 2, 3])], COST)
        assert work.output_partition.records == [2, 4, 6]
        assert work.deserialize_s > 0
        assert work.serialize_s > 0
        assert work.total_cpu_s == pytest.approx(
            work.deserialize_s + work.op_s + work.serialize_s)

    def test_count_only_skips_serialization(self):
        work = compute_task_work(
            descriptor([], CollectOutput(count_only=True)),
            [resolved([1, 2])], COST)
        assert work.serialize_s == 0.0
        assert work.output_stored_bytes == 0.0

    def test_deserialized_input_is_free_to_decode(self):
        work = compute_task_work(
            descriptor([], CollectOutput()),
            [ResolvedInput(partition=Partition.from_records([1]),
                           stored_bytes=0.0, fmt=DESERIALIZED,
                           in_memory=True)], COST)
        assert work.deserialize_s == 0.0

    def test_compressed_input_costs_more(self):
        plain = compute_task_work(
            descriptor([], CollectOutput(count_only=True)),
            [resolved([1] * 10, count=1e6, nbytes=100 * MB)], COST)
        compressed = compute_task_work(
            descriptor([], CollectOutput(count_only=True)),
            [resolved([1] * 10, count=1e6, nbytes=100 * MB,
                      fmt=COMPRESSED)], COST)
        assert compressed.deserialize_s > plain.deserialize_s
        assert compressed.input_stored_bytes < plain.input_stored_bytes

    def test_shuffle_output_buckets(self):
        output = ShuffleOutput(shuffle_id=0,
                               partitioner=HashPartitioner(4))
        work = compute_task_work(
            descriptor([], output),
            [resolved([(i, i) for i in range(40)])], COST)
        assert work.shuffle_buckets
        total = sum(p.record_count for p in work.shuffle_buckets.values())
        assert total == pytest.approx(40)

    def test_dfs_output_stored_bytes(self):
        output = DfsOutput(file_name="out", fmt=COMPRESSED)
        work = compute_task_work(
            descriptor([], output),
            [resolved([1] * 4, count=4, nbytes=100.0)], COST)
        assert work.output_stored_bytes == pytest.approx(50.0)

    def test_cache_snapshot_taken_at_split_point(self):
        cache = CacheSpec(rdd_id=9, after_ops=1, fmt=DESERIALIZED)
        chain = [MapOp(lambda x: x + 1), FilterOp(lambda x: x > 2)]
        work = compute_task_work(
            descriptor(chain, CollectOutput(), cache=cache),
            [resolved([1, 2, 3])], COST)
        assert work.cache_partition.records == [2, 3, 4]
        assert work.output_partition.records == [3, 4]

    def test_multiple_inputs_merged(self):
        work = compute_task_work(
            descriptor([], CollectOutput()),
            [resolved([1]), resolved([2]), resolved([3])], COST)
        assert work.input_partition.records == [1, 2, 3]
        assert work.input_stored_bytes == pytest.approx(
            sum(r.stored_bytes for r in [resolved([1]), resolved([2]),
                                         resolved([3])]))

    def test_unknown_output_rejected(self):
        with pytest.raises(ExecutionError):
            compute_task_work(descriptor([], object()),
                              [resolved([1])], COST)

    def test_op_cost_included(self):
        from repro.api.ops import OpCost
        chain = [MapOp(lambda x: x, cost=OpCost(per_record_s=1.0))]
        work = compute_task_work(
            descriptor(chain, CollectOutput(count_only=True)),
            [resolved([1, 2, 3])], COST)
        assert work.op_s == pytest.approx(3.0)
