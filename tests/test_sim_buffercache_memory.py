"""Unit tests for the buffer cache and memory accounting."""

import pytest

from repro.config import GB, HDD, MB, MachineSpec
from repro.errors import OutOfMemoryError, SimulationError
from repro.simulator import BufferCache, Disk, Environment, MemoryPool


def make_cache(env, cache_bytes=1 * GB, dirty_bg=256 * MB, disks=1):
    spec = MachineSpec(cores=8, memory_bytes=4 * GB, disks=(HDD,) * disks,
                       buffer_cache_bytes=cache_bytes,
                       dirty_background_bytes=dirty_bg)
    disk_objs = [Disk(env, d, name=f"disk{i}")
                 for i, d in enumerate(spec.disks)]
    return BufferCache(env, spec, disk_objs), disk_objs


class TestWrites:
    def test_buffered_write_is_fast(self):
        env = Environment()
        cache, disks = make_cache(env)
        env.run(until=cache.write(0, 100 * MB, "b1"))
        # Memcpy only: far faster than the ~1s the disk would take.
        assert env.now < 0.1
        assert cache.dirty_bytes == 100 * MB
        assert disks[0].bytes_written == 0

    def test_write_through_pays_disk_time(self):
        env = Environment()
        cache, disks = make_cache(env)
        env.run(until=cache.write(0, 100 * MB, "b1", write_through=True))
        assert env.now > 0.5  # paid the disk transfer, not just a memcpy
        assert disks[0].bytes_written == 100 * MB
        assert cache.dirty_bytes == 0

    def test_flusher_kicks_in_over_threshold(self):
        env = Environment()
        cache, disks = make_cache(env, dirty_bg=64 * MB)

        def proc():
            yield cache.write(0, 200 * MB, "big")
            # Let the background flusher run.
            yield env.timeout(30.0)

        env.run(until=env.process(proc()))
        assert disks[0].bytes_written == 200 * MB
        assert cache.dirty_bytes == 0
        # The written block remains cached clean.
        assert cache.resident("big")

    def test_writers_block_when_cache_full_of_dirty(self):
        env = Environment()
        cache, disks = make_cache(env, cache_bytes=100 * MB,
                                  dirty_bg=1000 * MB)
        times = {}

        def proc():
            yield cache.write(0, 90 * MB, "a")
            times["a"] = env.now
            yield cache.write(0, 90 * MB, "b")
            times["b"] = env.now

        env.run(until=env.process(proc()))
        assert times["a"] < 0.1
        # Second write had to wait for write-back of the first.
        assert times["b"] > 0.5
        assert disks[0].bytes_written >= 80 * MB

    def test_write_larger_than_cache_goes_through(self):
        env = Environment()
        cache, disks = make_cache(env, cache_bytes=50 * MB)
        env.run(until=cache.write(0, 200 * MB, "huge"))
        assert disks[0].bytes_written == 200 * MB


class TestReads:
    def test_read_miss_goes_to_disk(self):
        env = Environment()
        cache, disks = make_cache(env)
        env.run(until=cache.read(0, 100 * MB, "b1"))
        assert env.now > 0.5
        assert disks[0].bytes_read == 100 * MB
        assert cache.read_misses == 1

    def test_read_hit_after_miss(self):
        env = Environment()
        cache, disks = make_cache(env)

        def proc():
            yield cache.read(0, 100 * MB, "b1")
            t_miss = env.now
            yield cache.read(0, 100 * MB, "b1")
            return env.now - t_miss

        hit_time = env.run(until=env.process(proc()))
        assert hit_time < 0.1
        assert cache.read_hits == 1
        assert disks[0].bytes_read == 100 * MB

    def test_read_hits_dirty_data(self):
        env = Environment()
        cache, disks = make_cache(env)

        def proc():
            yield cache.write(0, 50 * MB, "shuffle-0")
            yield cache.read(0, 50 * MB, "shuffle-0")

        env.run(until=env.process(proc()))
        assert cache.read_hits == 1
        assert disks[0].bytes_read == 0

    def test_lru_eviction_of_clean_blocks(self):
        env = Environment()
        cache, disks = make_cache(env, cache_bytes=250 * MB)

        def proc():
            yield cache.read(0, 100 * MB, "a")
            yield cache.read(0, 100 * MB, "b")
            yield cache.read(0, 100 * MB, "c")  # evicts "a"

        env.run(until=env.process(proc()))
        assert not cache.resident("a")
        assert cache.resident("b")
        assert cache.resident("c")


class TestSync:
    def test_sync_flushes_everything(self):
        env = Environment()
        cache, disks = make_cache(env, dirty_bg=10 * GB)

        def proc():
            yield cache.write(0, 100 * MB, "x")
            assert cache.dirty_bytes == 100 * MB
            yield cache.sync()

        env.run(until=env.process(proc()))
        assert cache.dirty_bytes == 0
        assert disks[0].bytes_written == 100 * MB

    def test_invalid_disk_index(self):
        env = Environment()
        cache, _ = make_cache(env)
        with pytest.raises(SimulationError):
            cache.read(5, 10, "x")


class TestMemoryPool:
    def test_acquire_release_and_peak(self):
        env = Environment()
        pool = MemoryPool(env, capacity_bytes=1 * GB)
        pool.acquire(400 * MB)
        pool.acquire(300 * MB)
        pool.release(400 * MB)
        assert pool.used == 300 * MB
        assert pool.peak == 700 * MB

    def test_overcommit_recorded_when_not_strict(self):
        env = Environment()
        pool = MemoryPool(env, capacity_bytes=100 * MB)
        pool.acquire(200 * MB)
        assert pool.overcommit_events == 1
        assert pool.used == 200 * MB

    def test_strict_mode_raises(self):
        env = Environment()
        pool = MemoryPool(env, capacity_bytes=100 * MB, strict=True)
        with pytest.raises(OutOfMemoryError):
            pool.acquire(200 * MB)
        assert pool.used == 0

    def test_over_release_rejected(self):
        env = Environment()
        pool = MemoryPool(env, capacity_bytes=1 * GB)
        pool.acquire(10)
        with pytest.raises(SimulationError):
            pool.release(20)

    def test_timeline_records_changes(self):
        env = Environment()
        pool = MemoryPool(env, capacity_bytes=1 * GB)
        pool.acquire(100)
        env.timeout(5.0)
        env.run()
        assert pool.timeline[-1] == (0.0, 100.0)
