"""Data-service fault behavior: crashes, corruption, failover.

The headline contrast: with shuffle output co-located on compute
machines, a mid-job crash forces lineage re-execution (``fetch-failed``
attempts); with the disaggregated data tier the same crash loses
nothing.  Corruption is detected by checksums on read, served from a
surviving replica, and surfaced in the health monitor's suspicion
counters.  Every scenario must be byte-stable under the same seed.
"""

import pytest

from repro.api import AnalyticsContext
from repro.cluster import hdd_cluster
from repro.datasvc import DataService
from repro.errors import PlanError
from repro.faults import (BlockCorruption, FaultInjector, FaultPlan,
                          MachineCrash, StorageNodeCrash)
from repro.health import HealthMonitor

ENGINES = ("monospark", "spark")
RECORDS = [f"w{i % 17} w{i % 11}" for i in range(4000)]


def run_job(engine, disaggregated, plan=None, seed=2, health=False):
    cluster = hdd_cluster(num_machines=4, seed=seed)
    service = None
    options = {}
    if disaggregated:
        service = DataService(cluster, num_nodes=3, replication=2)
        options["datasvc"] = service
    ctx = AnalyticsContext(cluster, engine=engine, **options)
    monitor = HealthMonitor(ctx.engine) if health else None
    if plan is not None:
        FaultInjector(ctx.engine, plan).start()
    rdd = ctx.parallelize(RECORDS, num_partitions=8)
    results = sorted(rdd.flat_map(lambda line: line.split())
                        .map(lambda word: (word, 1))
                        .reduce_by_key(lambda a, b: a + b)
                        .collect())
    return ctx, service, results, monitor


def outcomes(ctx):
    counts = ctx.metrics.attempt_outcome_counts(ctx.last_result.job_id)
    return {kind: count for kind, count in sorted(counts.items()) if count}


def crash_plan(ctx, machine_id=1, restart_after=1.0):
    """Crash just after the map stage ends, while reduces fetch."""
    stages = ctx.metrics.stage_records(ctx.last_result.job_id)
    at = min(stage.end for stage in stages) * 1.02
    return FaultPlan([MachineCrash(at=at, machine_id=machine_id,
                                   restart_after=restart_after)])


@pytest.mark.parametrize("engine", ENGINES)
class TestComputeCrash:
    def test_colocated_crash_forces_lineage_reexecution(self, engine):
        clean_ctx, _, expected, _ = run_job(engine, disaggregated=False)
        ctx, _, results, _ = run_job(engine, disaggregated=False,
                                     plan=crash_plan(clean_ctx))
        assert results == expected
        assert outcomes(ctx).get("fetch-failed", 0) > 0

    def test_disaggregated_crash_loses_no_map_output(self, engine):
        clean_ctx, _, expected, _ = run_job(engine, disaggregated=False)
        ctx, service, results, _ = run_job(engine, disaggregated=True,
                                           plan=crash_plan(clean_ctx))
        assert results == expected
        counts = outcomes(ctx)
        assert counts.get("fetch-failed", 0) == 0
        assert counts.get("failed", 0) == 0
        assert service.stats()["lineage_losses"] == 0


@pytest.mark.parametrize("engine", ENGINES)
class TestStorageNodeCrash:
    def test_reads_fail_over_to_surviving_replica(self, engine):
        _, _, expected, _ = run_job(engine, disaggregated=False)
        plan = FaultPlan([StorageNodeCrash(at=0.004, node_index=0)])
        ctx, service, results, _ = run_job(engine, disaggregated=True,
                                           plan=plan)
        assert results == expected
        assert service.live_node_count == 2
        assert [f.kind for f in ctx.metrics.faults] == ["storage-crash"]

    def test_restart_brings_the_node_back(self, engine):
        _, _, expected, _ = run_job(engine, disaggregated=False)
        plan = FaultPlan([StorageNodeCrash(at=0.004, node_index=0,
                                           restart_after=0.002)])
        ctx, service, results, _ = run_job(engine, disaggregated=True,
                                           plan=plan)
        assert results == expected
        ctx.engine.env.run()  # drain the scheduled restart
        assert service.live_node_count == 3


@pytest.mark.parametrize("engine", ENGINES)
class TestCorruption:
    def test_detected_served_from_replica_and_suspected(self, engine):
        _, _, expected, _ = run_job(engine, disaggregated=False)
        plan = FaultPlan([BlockCorruption(at=0.004, node_index=0)])
        ctx, service, results, _ = run_job(engine, disaggregated=True,
                                           plan=plan)
        assert results == expected
        stats = service.stats()
        assert stats["integrity_faults"] == 1
        assert stats["failovers"] == 1
        assert stats["re_replications"] == 1
        assert service.suspicion_counts() == {0: 1}
        events = [(h.kind, h.machine_id) for h in ctx.metrics.health_events]
        assert ("integrity-fault", service.node_machine_id(0)) in events

    def test_suspicions_land_in_health_monitor(self, engine):
        plan = FaultPlan([BlockCorruption(at=0.004, node_index=0)])
        _, service, _, monitor = run_job(engine, disaggregated=True,
                                         plan=plan, health=True)
        assert monitor.integrity_suspicions \
            == {service.node_machine_id(0): 1}

    def test_repeat_offender_excluded_from_placement(self, engine):
        plan = FaultPlan([BlockCorruption(at=0.004, node_index=0,
                                          block_seq=0),
                          BlockCorruption(at=0.0041, node_index=0,
                                          block_seq=1)])
        _, service, _, _ = run_job(engine, disaggregated=True, plan=plan)
        if service.stats()["integrity_faults"] >= 2:
            assert 0 in service.excluded_nodes
            assert service.stats()["excluded_nodes"] == 1


class TestByteStability:
    @pytest.mark.parametrize("engine", ENGINES)
    def test_same_seed_same_everything(self, engine):
        clean_ctx, _, _, _ = run_job(engine, disaggregated=False)
        plan = crash_plan(clean_ctx)

        def one():
            ctx, service, results, _ = run_job(engine, disaggregated=True,
                                               plan=plan)
            return (results, outcomes(ctx), service.stats(),
                    ctx.last_result.duration)

        assert one() == one()


class TestPlanValidation:
    def test_storage_crash_rejects_bad_values(self):
        with pytest.raises(PlanError):
            FaultPlan([StorageNodeCrash(at=-1.0, node_index=0)])
        with pytest.raises(PlanError):
            FaultPlan([StorageNodeCrash(at=1.0, node_index=-1)])
        with pytest.raises(PlanError):
            FaultPlan([StorageNodeCrash(at=1.0, node_index=0,
                                        restart_after=0.0)])

    def test_corruption_rejects_bad_values(self):
        with pytest.raises(PlanError):
            FaultPlan([BlockCorruption(at=-1.0, node_index=0)])
        with pytest.raises(PlanError):
            FaultPlan([BlockCorruption(at=1.0, node_index=-1)])

    def test_faults_without_a_service_are_skipped(self):
        cluster = hdd_cluster(num_machines=2, seed=0)
        ctx = AnalyticsContext(cluster, engine="monospark")
        plan = FaultPlan([StorageNodeCrash(at=0.001, node_index=0)])
        FaultInjector(ctx.engine, plan).start()
        rdd = ctx.parallelize(["a b", "b c"], num_partitions=2)
        assert rdd.count() > 0
        skipped = [f for f in ctx.metrics.faults if "skipped" in f.kind]
        assert len(skipped) == 1
