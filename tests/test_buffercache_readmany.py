"""Tests for coalesced shuffle-segment reads and cache edge cases."""

import pytest

from repro.config import GB, HDD, MB, MachineSpec
from repro.simulator import BufferCache, Disk, Environment


def make_cache(env, cache_bytes=1 * GB):
    spec = MachineSpec(cores=8, memory_bytes=4 * GB, disks=(HDD,),
                       buffer_cache_bytes=cache_bytes,
                       dirty_background_bytes=256 * MB)
    disks = [Disk(env, HDD, name="disk0")]
    return BufferCache(env, spec, disks), disks


class TestReadMany:
    def test_all_misses_one_disk_request(self):
        env = Environment()
        cache, disks = make_cache(env)
        blocks = [(f"seg{i}", 4 * MB) for i in range(8)]
        env.run(until=cache.read_many(0, blocks))
        # One coalesced request: one seek total, not eight.
        assert disks[0].seeks == 1
        assert disks[0].bytes_read == 32 * MB
        assert cache.read_misses == 8

    def test_all_hits_cost_memcpy_only(self):
        env = Environment()
        cache, disks = make_cache(env)
        blocks = [(f"seg{i}", 4 * MB) for i in range(4)]

        def proc():
            yield cache.read_many(0, blocks)
            t_after_miss = env.now
            yield cache.read_many(0, blocks)
            return env.now - t_after_miss

        hit_time = env.run(until=env.process(proc()))
        assert hit_time < 0.05
        assert cache.read_hits == 4
        assert disks[0].bytes_read == 16 * MB

    def test_mixed_hits_and_misses(self):
        env = Environment()
        cache, disks = make_cache(env)

        def proc():
            yield cache.write(0, 4 * MB, "warm")
            yield cache.read_many(0, [("warm", 4 * MB), ("cold", 4 * MB)])

        env.run(until=env.process(proc()))
        assert cache.read_hits == 1
        assert cache.read_misses == 1
        assert disks[0].bytes_read == 4 * MB

    def test_misses_become_resident(self):
        env = Environment()
        cache, disks = make_cache(env)
        env.run(until=cache.read_many(0, [("a", MB), ("b", MB)]))
        assert cache.resident("a")
        assert cache.resident("b")

    def test_empty_list_is_noop(self):
        env = Environment()
        cache, disks = make_cache(env)
        env.run(until=cache.read_many(0, []))
        assert env.now == 0.0
        assert disks[0].bytes_read == 0


class TestTransferLogs:
    def test_disk_log_records_completions(self):
        env = Environment()
        disk = Disk(env, HDD)
        env.run(until=disk.read(8 * MB))
        env.run(until=disk.write(4 * MB))
        kinds = [(nbytes, kind) for _, nbytes, kind in disk.transfer_log]
        assert (8 * MB, "read") in kinds
        assert (4 * MB, "write") in kinds

    def test_network_log_records_completions(self):
        from repro.simulator import Network
        env = Environment()
        net = Network(env)
        net.register_machine(0, 100 * MB, 100 * MB)
        net.register_machine(1, 100 * MB, 100 * MB)
        env.run(until=net.transfer(0, 1, 10 * MB))
        assert len(net.completion_log) == 1
        _, nbytes, dst, src = net.completion_log[0]
        assert (nbytes, dst, src) == (10 * MB, 1, 0)


class TestCpuSpeedFactor:
    def test_slow_cores_stretch_compute(self):
        from repro.simulator import CpuPool
        env = Environment()
        pool = CpuPool(env, cores=1, speed_factor=0.5)
        env.run(until=pool.run(2.0))
        assert env.now == pytest.approx(4.0)

    def test_invalid_speed(self):
        from repro.errors import SimulationError
        from repro.simulator import CpuPool
        with pytest.raises(SimulationError):
            CpuPool(Environment(), cores=1, speed_factor=0.0)
