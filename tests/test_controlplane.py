"""The sharded multi-driver control plane: ring, membership, failover.

Covers the hash ring's determinism and churn-stability properties, the
policy/recovery validation surfaces, duplicate-tenant regression on
both serving front-ends, crash/partition failure semantics (zero lost
with checkpointed failover, lost accounting without), and the report's
rendering.
"""

import random

import pytest

from repro.api.context import AnalyticsContext
from repro.cluster import hdd_cluster
from repro.controlplane import (ControlPlane, ControlPlanePolicy, HashRing,
                                decode_state, encode_state)
from repro.errors import ConfigError, SimulationError
from repro.faults import (DriverCrash, DriverPartition, FaultInjector,
                          FaultPlan, RecoveryPolicy)
from repro.serve import JobServer, PoissonArrivals, wordcount_template


# ---------------------------------------------------------------------------
# Hash ring
# ---------------------------------------------------------------------------

class TestHashRing:
    def test_assignment_is_deterministic(self):
        a, b = HashRing(), HashRing()
        for member in range(4):
            a.add(member)
            b.add(member)
        keys = [f"tenant{i}" for i in range(50)]
        assert a.assignment(keys) == b.assignment(keys)

    def test_duplicate_join_rejected(self):
        ring = HashRing()
        ring.add(0)
        with pytest.raises(SimulationError):
            ring.add(0)

    def test_unknown_leave_rejected(self):
        ring = HashRing()
        with pytest.raises(SimulationError):
            ring.remove(3)

    def test_empty_ring_cannot_assign(self):
        with pytest.raises(SimulationError):
            HashRing().assign("tenant")

    def test_vnodes_validated(self):
        with pytest.raises(ConfigError):
            HashRing(vnodes=0)

    @pytest.mark.parametrize("seed", [0, 7, 42])
    def test_churn_stability(self, seed):
        # Removing one member moves only the keys that member owned;
        # re-adding it restores the original assignment exactly.
        rng = random.Random(seed)
        members = list(range(5))
        ring = HashRing()
        for member in members:
            ring.add(member)
        keys = [f"key-{seed}-{rng.randrange(10 ** 6)}" for _ in range(200)]
        before = ring.assignment(keys)
        victim = rng.choice(members)
        ring.remove(victim)
        after = ring.assignment(keys)
        for key in keys:
            if before[key] != victim:
                assert after[key] == before[key]
            else:
                assert after[key] != victim
        ring.add(victim)
        assert ring.assignment(keys) == before

    def test_load_spreads_across_members(self):
        ring = HashRing()
        for member in range(4):
            ring.add(member)
        owners = set(ring.assignment(
            [f"tenant{i}" for i in range(64)]).values())
        assert owners == {0, 1, 2, 3}


# ---------------------------------------------------------------------------
# Policy validation
# ---------------------------------------------------------------------------

class TestControlPlanePolicy:
    def test_defaults_valid(self):
        policy = ControlPlanePolicy()
        assert policy.checkpoint and policy.failover

    @pytest.mark.parametrize("kwargs", [
        {"heartbeat_interval_s": 0.0},
        {"heartbeat_interval_s": float("nan")},
        {"heartbeat_timeout_s": float("inf")},
        {"heartbeat_interval_s": 2.0, "heartbeat_timeout_s": 1.0},
        {"checkpoint_interval_s": -1.0},
        {"control_service_s": -0.1},
        {"control_service_s": float("nan")},
        {"vnodes": 0},
        {"checkpoint_nodes": 0},
        {"checkpoint_replication": 0},
    ])
    def test_invalid_rejected(self, kwargs):
        with pytest.raises(ConfigError):
            ControlPlanePolicy(**kwargs)


class TestRecoveryPolicyValidation:
    """The validated backoff cap on the fault-recovery policy."""

    @pytest.mark.parametrize("kwargs", [
        {"backoff_max_s": float("nan")},
        {"backoff_max_s": float("inf")},
        {"backoff_max_s": 0.0},
        {"backoff_max_s": -1.0},
        {"backoff_base_s": float("nan")},
        {"backoff_base_s": -0.5},
        {"backoff_factor": 0.5},
        {"backoff_factor": float("inf")},
        {"max_attempts": 0},
        {"max_fetch_retries": 0},
        {"speculation_interval_s": 0.0},
    ])
    def test_invalid_rejected(self, kwargs):
        with pytest.raises(ConfigError):
            RecoveryPolicy(**kwargs)

    def test_backoff_capped_without_overflow(self):
        policy = RecoveryPolicy(backoff_base_s=0.5, backoff_factor=2.0,
                                backoff_max_s=10.0)
        assert policy.backoff_s(1) == 0.5
        assert policy.backoff_s(3) == 2.0
        # An attempt count that would overflow 2**n as a float must
        # still return exactly the cap.
        assert policy.backoff_s(10_000) == 10.0


# ---------------------------------------------------------------------------
# Checkpoint codec
# ---------------------------------------------------------------------------

class TestCheckpointCodec:
    def test_round_trip(self):
        state = {"tenant": "t", "queued": [3, 1], "virtual_time": 1.25,
                 "inflight": [[7, 2, 0.5]]}
        assert decode_state(encode_state(state)) == state

    def test_encoding_is_canonical(self):
        a = encode_state({"b": 1, "a": 2})
        b = encode_state({"a": 2, "b": 1})
        assert a == b == '{"a":2,"b":1}'


# ---------------------------------------------------------------------------
# Duplicate-tenant regression (both serving front-ends)
# ---------------------------------------------------------------------------

def make_plane(num_drivers=2, tenants=4, rate=0.5, horizon=30.0,
               failover=True, seed=2, **policy_kwargs):
    cluster = hdd_cluster(num_machines=4, seed=seed)
    ctx = AnalyticsContext(cluster, engine="monospark")
    policy = ControlPlanePolicy(control_service_s=0.05,
                                checkpoint=failover, failover=failover,
                                **policy_kwargs)
    plane = ControlPlane(ctx, num_drivers=num_drivers, config=policy,
                         seed=seed)
    template = wordcount_template(ctx, num_blocks=2, block_mb=4.0)
    for i in range(tenants):
        plane.add_workload(f"tenant{i}", template,
                           PoissonArrivals(rate, horizon_s=horizon))
    return ctx, plane


class TestDuplicateTenant:
    def test_jobserver_rejects_duplicate(self):
        cluster = hdd_cluster(num_machines=2, seed=0)
        ctx = AnalyticsContext(cluster, engine="monospark")
        server = JobServer(ctx)
        server.add_tenant("t")
        with pytest.raises(SimulationError):
            server.add_tenant("t")

    def test_controlplane_rejects_duplicate(self):
        cluster = hdd_cluster(num_machines=2, seed=0)
        ctx = AnalyticsContext(cluster, engine="monospark")
        plane = ControlPlane(ctx, num_drivers=2)
        plane.add_tenant("t")
        with pytest.raises(SimulationError):
            plane.add_tenant("t")


# ---------------------------------------------------------------------------
# Crash failover
# ---------------------------------------------------------------------------

class TestCrashFailover:
    def test_leader_crash_loses_nothing(self):
        # Crash the initial leader (highest id) mid-run: the survivor
        # must win the election, adopt every tenant from checkpoints,
        # resume the in-flight jobs, and lose zero requests.
        ctx, plane = make_plane(num_drivers=2, horizon=40.0)
        plan = FaultPlan([DriverCrash(at=20.0, driver_id=1)])
        FaultInjector(ctx.engine, plan).start()
        report = plane.run()
        assert report.jobs_lost == 0
        assert report.leader_id == 0
        assert report.counters["elections"] == 1
        assert report.counters["jobs_resumed"] >= 1
        assert report.counters["checkpoint_restores"] >= 1
        assert set(report.assignment.values()) == {0}
        assert len(report.failovers) == 1
        summary = report.failovers[0]
        assert summary.dead_driver == 1
        assert summary.lost == 0
        kinds = {e.kind for e in report.events}
        assert {"driver-crash", "heartbeat-miss", "election", "leader",
                "reassign", "checkpoint-restore"} <= kinds

    def test_crash_without_failover_loses_requests(self):
        ctx, plane = make_plane(num_drivers=2, horizon=40.0,
                                failover=False)
        plan = FaultPlan([DriverCrash(at=20.0, driver_id=1)])
        FaultInjector(ctx.engine, plan).start()
        report = plane.run()
        assert report.jobs_lost > 0
        assert report.counters["jobs_resumed"] == 0
        assert report.counters["tenants_reassigned"] == 0
        # The SLO report only grows a "lost" column when something was
        # actually lost.
        assert "lost" in report.serve.format()
        stats = {s.tenant: s for s in report.serve.stats}
        assert sum(s.lost for s in stats.values()) == report.jobs_lost

    def test_crashed_driver_restart_rejoins(self):
        ctx, plane = make_plane(num_drivers=2, horizon=40.0)
        plan = FaultPlan([DriverCrash(at=15.0, driver_id=0,
                                      restart_after=10.0)])
        FaultInjector(ctx.engine, plan).start()
        report = plane.run()
        assert report.jobs_lost == 0
        kinds = {e.kind for e in report.events}
        assert "driver-restart" in kinds
        assert plane.drivers[0].incarnation == 1
        # Shards are sticky: the restarted driver serves only what the
        # ring gives it afterwards; nothing was lost either way.
        assert report.counters["tenants_reassigned"] >= 1

    def test_single_driver_plane_serves(self):
        ctx, plane = make_plane(num_drivers=1, tenants=2, horizon=15.0)
        report = plane.run()
        assert report.jobs_lost == 0
        assert report.total_completed > 0
        assert report.counters["elections"] == 0


# ---------------------------------------------------------------------------
# Partitions
# ---------------------------------------------------------------------------

class TestPartition:
    def test_partition_isolates_then_heals(self):
        # The partitioned driver loses its witness lease, quiesces
        # (isolated), its shard fails over, and on heal it rejoins
        # without double-completing anything.
        ctx, plane = make_plane(num_drivers=2, horizon=40.0)
        plan = FaultPlan([DriverPartition(at=15.0, driver_id=0,
                                          heal_after=15.0)])
        FaultInjector(ctx.engine, plan).start()
        report = plane.run()
        assert report.jobs_lost == 0
        kinds = {e.kind for e in report.events}
        assert {"driver-partition", "isolated", "partition-heal"} <= kinds
        completed = sum(d["completed"] for d in report.per_driver)
        assert completed == report.total_completed

    def test_mass_crash_survivor_keeps_serving(self):
        # All peers dead is NOT a partition: the survivor still holds
        # its witness lease, so it must elect itself and adopt every
        # shard rather than quiescing.
        ctx, plane = make_plane(num_drivers=3, horizon=30.0)
        plan = FaultPlan([DriverCrash(at=10.0, driver_id=1),
                          DriverCrash(at=10.0, driver_id=2)])
        FaultInjector(ctx.engine, plan).start()
        report = plane.run()
        assert report.jobs_lost == 0
        assert report.leader_id == 0
        assert set(report.assignment.values()) == {0}
        assert "isolated" not in {e.kind for e in report.events}


# ---------------------------------------------------------------------------
# Report / lifecycle
# ---------------------------------------------------------------------------

class TestReport:
    def test_format_sections(self):
        ctx, plane = make_plane(num_drivers=2, tenants=2, horizon=15.0)
        plan = FaultPlan([DriverCrash(at=8.0, driver_id=1)])
        FaultInjector(ctx.engine, plan).start()
        report = plane.run()
        text = report.format()
        assert "SLO report (monospark" in text
        assert "Control plane (2 drivers" in text
        assert "Control-plane counters" in text
        assert "Failover timeline" in text
        assert "Driver event timeline" in text

    def test_plane_runs_once(self):
        ctx, plane = make_plane(num_drivers=1, tenants=1, horizon=5.0,
                                rate=0.2)
        plane.run()
        with pytest.raises(SimulationError):
            plane.run()

    def test_num_drivers_validated(self):
        cluster = hdd_cluster(num_machines=2, seed=0)
        ctx = AnalyticsContext(cluster, engine="monospark")
        with pytest.raises(ConfigError):
            ControlPlane(ctx, num_drivers=0)
