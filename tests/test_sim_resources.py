"""Unit tests for Store, Semaphore, and BusyTracker."""

import pytest

from repro.errors import SimulationError
from repro.simulator import BusyTracker, Environment, Semaphore, Store


class TestStore:
    def test_put_then_get(self):
        env = Environment()
        store = Store(env)

        def proc():
            yield store.put("a")
            item = yield store.get()
            return item

        assert env.run(until=env.process(proc())) == "a"

    def test_get_blocks_until_put(self):
        env = Environment()
        store = Store(env)

        def consumer():
            item = yield store.get()
            return (item, env.now)

        def producer():
            yield env.timeout(3.0)
            yield store.put("x")

        consumer_proc = env.process(consumer())
        env.process(producer())
        assert env.run(until=consumer_proc) == ("x", 3.0)

    def test_fifo_ordering(self):
        env = Environment()
        store = Store(env)
        received = []

        def consumer():
            for _ in range(3):
                item = yield store.get()
                received.append(item)

        def producer():
            for item in ("a", "b", "c"):
                yield store.put(item)

        env.process(producer())
        env.process(consumer())
        env.run()
        assert received == ["a", "b", "c"]

    def test_bounded_put_blocks(self):
        env = Environment()
        store = Store(env, capacity=1)
        log = []

        def producer():
            yield store.put("a")
            log.append(("put-a", env.now))
            yield store.put("b")
            log.append(("put-b", env.now))

        def consumer():
            yield env.timeout(5.0)
            item = yield store.get()
            log.append((f"got-{item}", env.now))

        env.process(producer())
        env.process(consumer())
        env.run()
        assert ("put-a", 0.0) in log
        assert ("put-b", 5.0) in log  # blocked until the consumer drained one

    def test_invalid_capacity(self):
        env = Environment()
        with pytest.raises(SimulationError):
            Store(env, capacity=0)


class TestSemaphore:
    def test_admits_up_to_units(self):
        env = Environment()
        sem = Semaphore(env, 2)
        starts = []

        def worker(tag):
            yield sem.acquire()
            starts.append((tag, env.now))
            yield env.timeout(10.0)
            sem.release()

        for tag in range(3):
            env.process(worker(tag))
        env.run()
        assert starts == [(0, 0.0), (1, 0.0), (2, 10.0)]

    def test_queue_length_visible(self):
        env = Environment()
        sem = Semaphore(env, 1)

        def worker():
            yield sem.acquire()
            yield env.timeout(1.0)
            sem.release()

        for _ in range(4):
            env.process(worker())
        env.run(until=0.5)
        assert sem.queue_length == 3
        assert sem.in_use == 1
        env.run()
        assert sem.queue_length == 0
        assert sem.in_use == 0

    def test_release_without_acquire_rejected(self):
        env = Environment()
        sem = Semaphore(env, 1)
        with pytest.raises(SimulationError):
            sem.release()


class TestBusyTracker:
    def test_busy_time_accumulates(self):
        env = Environment()
        tracker = BusyTracker(env, units=2)

        def proc():
            tracker.add(1)
            yield env.timeout(10.0)
            tracker.add(1)
            yield env.timeout(10.0)
            tracker.remove(2)
            yield env.timeout(10.0)

        env.run(until=env.process(proc()))
        assert tracker.busy_time() == pytest.approx(10.0 + 20.0)
        assert tracker.utilization() == pytest.approx(30.0 / 60.0)

    def test_windowed_utilization(self):
        env = Environment()
        tracker = BusyTracker(env, units=1)

        def proc():
            yield env.timeout(10.0)
            tracker.add(1)
            yield env.timeout(10.0)
            tracker.remove(1)
            yield env.timeout(10.0)

        env.run(until=env.process(proc()))
        assert tracker.utilization(0.0, 10.0) == pytest.approx(0.0)
        assert tracker.utilization(10.0, 20.0) == pytest.approx(1.0)
        assert tracker.utilization(5.0, 15.0) == pytest.approx(0.5)

    def test_tail_segment_counted(self):
        env = Environment()
        tracker = BusyTracker(env, units=1)
        tracker.add(1)
        env.timeout(5.0)
        env.run()
        assert tracker.busy_time() == pytest.approx(5.0)

    def test_negative_busy_rejected(self):
        env = Environment()
        tracker = BusyTracker(env, units=1)
        with pytest.raises(SimulationError):
            tracker.remove(1)
