"""Semantic checks for the Big Data Benchmark queries.

The queries run on sampled real records, so their *data* behaviour (not
just timing) is checkable: filters filter, aggregates aggregate, joins
match on shared URLs.
"""

import pytest

from repro.api import AnalyticsContext
from repro.api.plan import CollectOutput
from repro.cluster import hdd_cluster
from repro.workloads.bigdata import (BdbScale, Q1_SELECTIVITY,
                                     generate_bdb_tables)
from repro.workloads.scaling import scaled_memory_overrides


@pytest.fixture(scope="module")
def bdb():
    scale = BdbScale(fraction=0.01)
    cluster = hdd_cluster(num_machines=3, **scaled_memory_overrides(0.01))
    generate_bdb_tables(cluster, scale, seed=5)
    ctx = AnalyticsContext(cluster, engine="monospark")
    return ctx, scale


class TestTableSemantics:
    def test_rankings_rows_well_formed(self, bdb):
        ctx, _ = bdb
        rows = ctx.text_file("rankings").take(20)
        for url, (page_rank, duration) in rows:
            assert url.startswith("url")
            assert 0 <= page_rank < 10000
            assert 0 <= duration < 100

    def test_uservisits_rows_well_formed(self, bdb):
        ctx, _ = bdb
        rows = ctx.text_file("uservisits").take(20)
        for ip, (dest, visit_date, revenue) in rows:
            assert ip.count(".") == 3
            assert dest.startswith("url")
            assert 0.0 <= visit_date < 1.0
            assert 0.0 <= revenue < 1.0


class TestQuerySemantics:
    def test_query1_filter_is_real(self, bdb):
        ctx, _ = bdb
        cutoff = int(10000 * (1 - Q1_SELECTIVITY["1b"]))
        result = (ctx.text_file("rankings")
                  .filter(lambda row: row[1][0] > cutoff)
                  .collect())
        assert all(page_rank > cutoff for _, (page_rank, _) in result)

    def test_query2_substring_grouping(self, bdb):
        ctx, _ = bdb
        sums = (ctx.text_file("uservisits")
                .map(lambda row: (row[0][:8], row[1][2]))
                .reduce_by_key(lambda a, b: a + b, num_partitions=4)
                .collect())
        reference = {}
        for block in ctx.cluster.dfs.get_file("uservisits").blocks:
            for ip, (_, _, revenue) in block.payload.records:
                reference[ip[:8]] = reference.get(ip[:8], 0.0) + revenue
        assert len(sums) == len(reference)
        for prefix, total in sums:
            assert total == pytest.approx(reference[prefix])

    def test_query3_join_matches_urls(self, bdb):
        ctx, _ = bdb
        visits = (ctx.text_file("uservisits")
                  .map(lambda row: (row[1][0], row[0])))
        ranks = ctx.text_file("rankings").map(
            lambda row: (row[0], row[1][0]))
        joined = visits.join(ranks, num_partitions=4).collect()
        ranking_urls = {
            url for block in ctx.cluster.dfs.get_file("rankings").blocks
            for url, _ in block.payload.records}
        assert joined, "sampled join should produce matches"
        assert all(url in ranking_urls for url, _ in joined)

    def test_query4_counts_links(self, bdb):
        ctx, _ = bdb
        counts = (ctx.text_file("documents")
                  .flat_map(lambda doc: doc[1])
                  .map(lambda link: (link, 1))
                  .reduce_by_key(lambda a, b: a + b, num_partitions=4)
                  .collect())
        total_links = sum(
            len(doc[1])
            for block in ctx.cluster.dfs.get_file("documents").blocks
            for doc in block.payload.records)
        assert sum(count for _, count in counts) == total_links
