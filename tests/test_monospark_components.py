"""Unit tests for MonoSpark's internal components."""

import pytest

from repro.cluster import hdd_cluster, ssd_cluster
from repro.config import HDD, SSD, MB
from repro.errors import SimulationError
from repro.metrics.events import PHASE_COMPUTE, PHASE_INPUT_READ
from repro.monospark.engine import MonoSparkEngine
from repro.monospark.localdag import LocalDagScheduler
from repro.monospark.monotask import ComputeMonotask, DiskMonotask
from repro.monospark.assignment import multitask_concurrency
from repro.monospark.schedulers import ResourceScheduler
from repro.simulator import Environment


class FakeMonotask:
    """Minimal monotask for scheduler tests."""

    def __init__(self, env, phase, duration, log):
        self.env = env
        self.phase = phase
        self.duration = duration
        self.log = log
        self.deps = []
        self.done = env.event()
        self.submitted_at = None
        self.started_at = None

    def execute(self):
        yield self.env.timeout(self.duration)

    def record(self):
        self.log.append((self.phase, self.started_at, self.env.now))


class TestResourceScheduler:
    def test_respects_concurrency_limit(self):
        env = Environment()
        log = []
        scheduler = ResourceScheduler(env, concurrency=2, name="test")
        for _ in range(4):
            scheduler.submit(FakeMonotask(env, "a", 10.0, log))
        env.run()
        # Two waves of two.
        starts = sorted(start for _, start, _ in log)
        assert starts == [0.0, 0.0, 10.0, 10.0]
        assert scheduler.completed == 0 or True  # counter is optional

    def test_round_robin_alternates_phases(self):
        env = Environment()
        log = []
        scheduler = ResourceScheduler(env, concurrency=1, name="test")
        # Queue 3 reads then 3 writes while one task runs.
        for _ in range(3):
            scheduler.submit(FakeMonotask(env, "read", 1.0, log))
        for _ in range(3):
            scheduler.submit(FakeMonotask(env, "write", 1.0, log))
        env.run()
        phases = [phase for phase, _, _ in log]
        # First read runs immediately; thereafter phases alternate.
        assert phases[0] == "read"
        assert "write" in phases[1:3]  # writes are not starved
        alternations = sum(1 for a, b in zip(phases, phases[1:]) if a != b)
        assert alternations >= 3

    def test_fifo_mode_preserves_order(self):
        env = Environment()
        log = []
        scheduler = ResourceScheduler(env, concurrency=1, name="test",
                                      round_robin_phases=False)
        for phase in ("read", "read", "write", "read"):
            scheduler.submit(FakeMonotask(env, phase, 1.0, log))
        env.run()
        assert [phase for phase, _, _ in log] == ["read", "read", "write",
                                                  "read"]

    def test_queue_length_visible(self):
        env = Environment()
        scheduler = ResourceScheduler(env, concurrency=1, name="test")
        for _ in range(5):
            scheduler.submit(FakeMonotask(env, "x", 1.0, []))
        assert scheduler.queue_length == 4
        assert scheduler.max_queue_length == 4
        env.run()
        assert scheduler.queue_length == 0

    def test_invalid_concurrency(self):
        with pytest.raises(SimulationError):
            ResourceScheduler(Environment(), concurrency=0, name="bad")


class TestLocalDagScheduler:
    def make(self, env):
        routed = []
        scheduler = LocalDagScheduler(env, route=lambda m: routed.append(m))
        return scheduler, routed

    def test_dependency_ordering(self):
        env = Environment()
        log = []
        a = FakeMonotask(env, "a", 1.0, log)
        b = FakeMonotask(env, "b", 1.0, log)
        b.deps.append(a)
        order = []
        scheduler = LocalDagScheduler(env, route=lambda m: order.append(m))
        done = scheduler.submit_multitask([a, b])
        # Only the dependency-free monotask is routed initially.
        assert order == [a]
        a.done.succeed()
        env.step()  # deliver the completion callback
        assert order == [a, b]
        b.done.succeed()
        env.run(until=done)

    def test_diamond_dependencies(self):
        env = Environment()
        a = FakeMonotask(env, "a", 1.0, [])
        b = FakeMonotask(env, "b", 1.0, [])
        c = FakeMonotask(env, "c", 1.0, [])
        d = FakeMonotask(env, "d", 1.0, [])
        b.deps.append(a)
        c.deps.append(a)
        d.deps.extend([b, c])
        order = []
        scheduler = LocalDagScheduler(env, route=lambda m: order.append(m))
        scheduler.submit_multitask([a, b, c, d])
        a.done.succeed()
        env.step()
        assert set(order[1:]) == {b, c}
        b.done.succeed()
        env.step()
        assert d not in order
        c.done.succeed()
        env.step()
        assert order[-1] is d

    def test_cycle_detected(self):
        env = Environment()
        a = FakeMonotask(env, "a", 1.0, [])
        b = FakeMonotask(env, "b", 1.0, [])
        a.deps.append(b)
        b.deps.append(a)
        scheduler = LocalDagScheduler(env, route=lambda m: None)
        with pytest.raises(SimulationError, match="cycle"):
            scheduler.submit_multitask([a, b])

    def test_empty_multitask_rejected(self):
        scheduler = LocalDagScheduler(Environment(), route=lambda m: None)
        with pytest.raises(SimulationError):
            scheduler.submit_multitask([])


class TestAssignmentRule:
    def test_paper_example(self):
        """4 cores + 1 HDD + 4 network + 1 extra = 10 (§3.4)."""
        cluster = hdd_cluster(num_machines=1, num_disks=1, cores=4)
        machine = cluster.machine(0)
        concurrency = multitask_concurrency(
            machine, network_limit=4, disk_concurrency=lambda spec: 1)
        assert concurrency == 10

    def test_ssd_counts_flash_concurrency(self):
        cluster = ssd_cluster(num_machines=1, num_disks=2, cores=8)
        machine = cluster.machine(0)
        concurrency = multitask_concurrency(
            machine, network_limit=4,
            disk_concurrency=lambda spec: 4 if spec.max_concurrency > 1
            else 1)
        assert concurrency == 8 + 8 + 4 + 1

    def test_engine_uses_rule(self):
        cluster = hdd_cluster(num_machines=1, cores=8, num_disks=2)
        engine = MonoSparkEngine(cluster)
        assert engine.concurrency_for(cluster.machine(0)) == 8 + 2 + 4 + 1

    def test_override(self):
        cluster = hdd_cluster(num_machines=1)
        engine = MonoSparkEngine(cluster, concurrency_override=3)
        assert engine.concurrency_for(cluster.machine(0)) == 3


class TestMonotaskExecution:
    def test_compute_monotask_charges_cpu(self):
        cluster = hdd_cluster(num_machines=1)
        engine = MonoSparkEngine(cluster)
        worker = engine.workers[0]
        monotask = ComputeMonotask(worker, PHASE_COMPUTE, (0, 0, 0),
                                   deserialize_s=1.0, op_s=2.0,
                                   serialize_s=0.5)
        assert monotask.seconds == 3.5
        worker.compute_scheduler.submit(monotask)
        cluster.env.run(until=monotask.done)
        assert cluster.env.now == pytest.approx(3.5)
        assert cluster.machine(0).cpu.total_busy_s == pytest.approx(3.5)

    def test_disk_monotask_is_write_through(self):
        cluster = hdd_cluster(num_machines=1)
        engine = MonoSparkEngine(cluster)
        worker = engine.workers[0]
        monotask = DiskMonotask(worker, PHASE_INPUT_READ, (0, 0, 0),
                                disk_index=0, nbytes=130 * MB, kind="write")
        worker.disk_schedulers[0].submit(monotask)
        cluster.env.run(until=monotask.done)
        disk = cluster.machine(0).disks[0]
        assert disk.bytes_written == 130 * MB
        # Write-through: the data hit the platter, not the buffer cache.
        assert cluster.machine(0).cache.dirty_bytes == 0
        assert cluster.env.now >= 1.0

    def test_monotask_records_queue_time(self):
        cluster = hdd_cluster(num_machines=1, cores=1)
        engine = MonoSparkEngine(cluster)
        worker = engine.workers[0]
        first = ComputeMonotask(worker, PHASE_COMPUTE, (0, 0, 0), op_s=2.0)
        second = ComputeMonotask(worker, PHASE_COMPUTE, (0, 0, 1), op_s=1.0)
        worker.compute_scheduler.submit(first)
        worker.compute_scheduler.submit(second)
        cluster.env.run()
        records = engine.metrics.monotasks
        assert records[0].queue_s == pytest.approx(0.0)
        assert records[1].queue_s == pytest.approx(2.0)
