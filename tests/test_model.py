"""Unit and integration tests for the §6 performance model."""

import pytest

from repro.api import AnalyticsContext
from repro.cluster import hdd_cluster, ssd_cluster
from repro.config import GB, MB
from repro.errors import ModelError
from repro.metrics.events import CPU, DISK, NETWORK, PHASE_INPUT_READ
from repro.model import (HardwareProfile, StageProfile, WhatIf,
                         analyze_bottlenecks, hardware_profile,
                         model_job_seconds, model_stage, predict,
                         profile_job, slot_model_prediction)
from repro.workloads.scaling import scaled_memory_overrides
from repro.workloads.sortgen import SortWorkload, generate_sort_input, run_sort

HW = HardwareProfile(num_machines=10, cores_per_machine=8,
                     disks_per_machine=2, disk_throughput_bps=100 * MB,
                     network_bps=125 * MB)


def profile(compute_s=0.0, disk_bytes=None, network_bytes=0.0,
            duration=100.0, input_deser=0.0):
    return StageProfile(job_id=0, stage_id=0, name="s",
                        measured_duration_s=duration, compute_s=compute_s,
                        deserialize_s=input_deser,
                        input_deserialize_s=input_deser,
                        disk_bytes=disk_bytes or {}, network_bytes=network_bytes)


class TestStageModel:
    def test_ideal_cpu_time(self):
        model = model_stage(profile(compute_s=800.0), HW)
        assert model.ideal_cpu_s == pytest.approx(10.0)  # 800 / 80 cores

    def test_ideal_disk_time(self):
        model = model_stage(
            profile(disk_bytes={PHASE_INPUT_READ: 20 * 100 * MB * 10}), HW)
        # 20,000 MB over 20 disks x 100 MB/s = 10 s.
        assert model.ideal_disk_s == pytest.approx(10.0)

    def test_ideal_network_time(self):
        model = model_stage(profile(network_bytes=1250 * MB * 10), HW)
        assert model.ideal_network_s == pytest.approx(10.0)

    def test_stage_time_is_max(self):
        model = model_stage(
            profile(compute_s=800.0, network_bytes=125 * MB), HW)
        assert model.ideal_completion_s == model.ideal_cpu_s
        assert model.bottleneck == CPU

    def test_without_resource(self):
        model = model_stage(
            profile(compute_s=800.0,
                    disk_bytes={"x": 2 * 100 * MB * 20}), HW)
        assert model.without(CPU) == pytest.approx(model.ideal_disk_s)
        with pytest.raises(ModelError):
            model.without("gpu")

    def test_job_is_sum_of_stages(self):
        stages = [profile(compute_s=800.0), profile(compute_s=1600.0)]
        assert model_job_seconds(stages, HW) == pytest.approx(30.0)


class TestHardwareProfile:
    def test_aggregates(self):
        assert HW.total_cores == 80
        assert HW.aggregate_disk_bps == 20 * 100 * MB
        assert HW.aggregate_network_bps == 10 * 125 * MB

    def test_scaled(self):
        doubled = HW.scaled(disks_per_machine=4)
        assert doubled.aggregate_disk_bps == 2 * HW.aggregate_disk_bps
        assert doubled.total_cores == HW.total_cores

    def test_from_cluster(self):
        hw = hardware_profile(hdd_cluster(num_machines=4))
        assert hw.num_machines == 4
        assert hw.disks_per_machine == 2


class TestWhatIf:
    def test_hardware_change_scales_prediction(self):
        profiles = [profile(disk_bytes={"all": 4000 * MB * 100},
                            duration=250.0)]
        what_if = WhatIf(hardware=HW.scaled(disks_per_machine=4))
        prediction = predict(profiles, measured_s=250.0,
                             current_hardware=HW, what_if=what_if)
        # Purely disk-bound: doubling disks should halve the runtime.
        assert prediction.predicted_s == pytest.approx(125.0)

    def test_cpu_bound_job_ignores_disk_change(self):
        profiles = [profile(compute_s=8000.0,
                            disk_bytes={"all": 100 * MB}, duration=120.0)]
        what_if = WhatIf(hardware=HW.scaled(disks_per_machine=4))
        prediction = predict(profiles, 120.0, HW, what_if)
        assert prediction.predicted_s == pytest.approx(120.0)

    def test_in_memory_removes_input_read_and_deser(self):
        profiles = [StageProfile(
            job_id=0, stage_id=0, name="map", measured_duration_s=100.0,
            compute_s=4000.0, deserialize_s=2000.0,
            input_deserialize_s=2000.0,
            disk_bytes={PHASE_INPUT_READ: 200 * 100 * MB * 20})]
        prediction = predict(profiles, 100.0, HW,
                             WhatIf(input_in_memory_deserialized=True))
        new = prediction.stage_models_new[0]
        assert new.ideal_disk_s == 0.0
        assert new.ideal_cpu_s == pytest.approx(2000.0 / 80)

    def test_in_memory_ignores_non_input_stages(self):
        reduce_profile = profile(compute_s=4000.0,
                                 disk_bytes={"shuffle_read": 100 * MB})
        prediction = predict([reduce_profile], 100.0, HW,
                             WhatIf(input_in_memory_deserialized=True))
        assert (prediction.stage_models_new[0].ideal_cpu_s
                == prediction.stage_models_old[0].ideal_cpu_s)

    def test_error_vs(self):
        profiles = [profile(compute_s=8000.0, duration=100.0)]
        prediction = predict(profiles, 100.0, HW, WhatIf())
        assert prediction.error_vs(100.0) == pytest.approx(0.0)
        assert prediction.error_vs(80.0) == pytest.approx(0.25)

    def test_empty_profiles_rejected(self):
        with pytest.raises(ModelError):
            predict([], 100.0, HW, WhatIf())


class TestBottlenecks:
    def test_report_fields(self):
        profiles = [
            profile(compute_s=8000.0, disk_bytes={"a": 4000 * MB * 20},
                    network_bytes=100 * MB),
            profile(compute_s=800.0, disk_bytes={"a": 8000 * MB * 20}),
        ]
        profiles[1].stage_id = 1
        report = analyze_bottlenecks(profiles, measured_s=200.0, hardware=HW)
        assert report.stage_bottlenecks[0] == CPU
        assert report.stage_bottlenecks[1] == DISK
        assert 0 < report.speedup_fraction(CPU) < 1
        assert report.predicted_runtime_without(NETWORK) <= 200.0

    def test_job_bottleneck(self):
        profiles = [profile(compute_s=16000.0,
                            disk_bytes={"a": 100 * MB})]
        report = analyze_bottlenecks(profiles, 100.0, HW)
        assert report.job_bottleneck == CPU


class TestSlotModel:
    def test_scaling(self):
        assert slot_model_prediction(10.0, 8, 16) == pytest.approx(5.0)
        assert slot_model_prediction(10.0, 8, 4) == pytest.approx(20.0)

    def test_invalid_slots(self):
        with pytest.raises(ModelError):
            slot_model_prediction(10.0, 0, 4)


class TestEndToEndModel:
    """profile_job on a real MonoSpark run, and a real what-if."""

    def run_sort_on(self, machines, disks, values=25, total=6 * GB,
                    maps=96):
        cluster = hdd_cluster(num_machines=machines, num_disks=disks,
                              **scaled_memory_overrides(0.01))
        workload = SortWorkload(total_bytes=total, values_per_key=values,
                                num_map_tasks=maps)
        generate_sort_input(cluster, workload)
        ctx = AnalyticsContext(cluster, engine="monospark")
        result = run_sort(ctx, workload)
        return ctx, result

    def test_profile_job_accounts_all_bytes(self):
        ctx, result = self.run_sort_on(machines=4, disks=2)
        profiles = profile_job(ctx.metrics, result.job_id)
        assert len(profiles) == 2
        total_disk = sum(p.total_disk_bytes for p in profiles)
        # read input + write shuffle + read shuffle + write output = 4x.
        assert total_disk == pytest.approx(4 * 6 * GB, rel=0.02)
        map_stage = [p for p in profiles if p.reads_dfs_input][0]
        assert map_stage.input_deserialize_s > 0

    def test_profile_requires_monospark(self):
        cluster = hdd_cluster(num_machines=2,
                              **scaled_memory_overrides(0.01))
        workload = SortWorkload(total_bytes=1 * GB, values_per_key=25,
                                num_map_tasks=16)
        generate_sort_input(cluster, workload)
        ctx = AnalyticsContext(cluster, engine="spark")
        result = run_sort(ctx, workload)
        with pytest.raises(ModelError):
            profile_job(ctx.metrics, result.job_id)

    def test_predict_two_to_four_disks(self):
        """Measure on 2 disks, predict 4, validate against a real run."""
        ctx2, result2 = self.run_sort_on(machines=4, disks=2)
        ctx4, result4 = self.run_sort_on(machines=4, disks=4)
        profiles = profile_job(ctx2.metrics, result2.job_id)
        what_if = WhatIf(hardware=hardware_profile(ctx4.cluster))
        prediction = predict(profiles, result2.duration,
                             hardware_profile(ctx2.cluster), what_if)
        # The paper's bar for what-if predictions is 28% (§6).
        assert prediction.error_vs(result4.duration) < 0.28
