"""Integration tests: both engines compute *correct results*.

The same logical jobs run on the Spark-style engine and on MonoSpark and
must produce identical records -- the paper's API-compatibility claim
(§4) in executable form.
"""

import random

import pytest

from repro.api import AnalyticsContext
from repro.cluster import hdd_cluster, ssd_cluster
from repro.config import MB
from repro.datamodel import Partition

ENGINES = ["spark", "monospark"]


def fresh_ctx(engine, machines=2, **options):
    return AnalyticsContext(hdd_cluster(num_machines=machines),
                            engine=engine, **options)


def dfs_ctx(engine, blocks=6, records_per_block=50, machines=3, seed=1):
    cluster = hdd_cluster(num_machines=machines)
    rng = random.Random(seed)
    payloads = []
    for b in range(blocks):
        records = [(rng.randint(0, 999), f"v{b}")
                   for _ in range(records_per_block)]
        payloads.append(Partition.from_records(
            records, record_count=records_per_block, data_bytes=32 * MB))
    cluster.dfs.create_file("input", payloads, [32 * MB] * blocks)
    return AnalyticsContext(cluster, engine=engine)


@pytest.mark.parametrize("engine", ENGINES)
class TestBasicActions:
    def test_word_count(self, engine):
        ctx = fresh_ctx(engine)
        lines = ["the quick brown fox", "the lazy dog", "the fox"]
        out = (ctx.parallelize(lines, num_partitions=2)
               .flat_map(str.split)
               .map(lambda w: (w, 1))
               .reduce_by_key(lambda a, b: a + b)
               .collect())
        assert dict(out) == {"the": 3, "quick": 1, "brown": 1, "fox": 2,
                             "lazy": 1, "dog": 1}

    def test_count(self, engine):
        ctx = fresh_ctx(engine)
        n = ctx.parallelize(range(100), num_partitions=4).count()
        assert n == 100

    def test_filter_map_pipeline(self, engine):
        ctx = fresh_ctx(engine)
        out = (ctx.parallelize(range(20), num_partitions=3)
               .filter(lambda x: x % 2 == 0)
               .map(lambda x: x * 10)
               .collect())
        assert sorted(out) == [x * 10 for x in range(0, 20, 2)]

    def test_group_by_key(self, engine):
        ctx = fresh_ctx(engine)
        pairs = [("a", 1), ("b", 2), ("a", 3), ("c", 4), ("b", 5)]
        out = (ctx.parallelize(pairs, num_partitions=2)
               .group_by_key(num_partitions=2).collect())
        grouped = {k: sorted(v) for k, v in out}
        assert grouped == {"a": [1, 3], "b": [2, 5], "c": [4]}

    def test_join(self, engine):
        ctx = fresh_ctx(engine)
        left = ctx.parallelize([("a", 1), ("b", 2), ("a", 3)],
                               num_partitions=2)
        right = ctx.parallelize([("a", "x"), ("c", "y")], num_partitions=2)
        out = left.join(right, num_partitions=2).collect()
        assert sorted(out) == [("a", (1, "x")), ("a", (3, "x"))]

    def test_sort_by_key_global_order(self, engine):
        ctx = fresh_ctx(engine)
        rng = random.Random(7)
        pairs = [(rng.randint(0, 10000), i) for i in range(200)]
        out = (ctx.parallelize(pairs, num_partitions=4)
               .sort_by_key(num_partitions=4).collect())
        keys = [k for k, _ in out]
        assert keys == sorted(k for k, _ in pairs)

    def test_empty_result(self, engine):
        ctx = fresh_ctx(engine)
        out = (ctx.parallelize(range(10), num_partitions=2)
               .filter(lambda x: False).collect())
        assert out == []

    def test_sequential_jobs_share_context(self, engine):
        ctx = fresh_ctx(engine)
        rdd = ctx.parallelize(range(10), num_partitions=2)
        assert rdd.count() == 10
        assert sorted(rdd.collect()) == list(range(10))


@pytest.mark.parametrize("engine", ENGINES)
class TestDfsJobs:
    def test_read_filter_collect(self, engine):
        ctx = dfs_ctx(engine)
        out = (ctx.text_file("input")
               .filter(lambda kv: kv[0] < 500).collect())
        assert all(k < 500 for k, _ in out)
        assert len(out) > 0

    def test_save_creates_blocks(self, engine):
        ctx = dfs_ctx(engine, blocks=4)
        ctx.text_file("input").save_as_text_file("out")
        out_file = ctx.cluster.dfs.get_file("out")
        assert len(out_file.blocks) == 4
        assert out_file.nbytes == pytest.approx(4 * 32 * MB, rel=0.01)

    def test_dfs_sort_matches_reference(self, engine):
        ctx = dfs_ctx(engine, blocks=4, records_per_block=30)
        out = ctx.text_file("input").sort_by_key(num_partitions=4).collect()
        reference = sorted(
            record
            for block in ctx.cluster.dfs.get_file("input").blocks
            for record in block.payload.records)
        assert [k for k, _ in out] == [k for k, _ in reference]


@pytest.mark.parametrize("engine", ENGINES)
class TestCaching:
    def test_cached_rdd_reused(self, engine):
        ctx = fresh_ctx(engine)
        rdd = ctx.parallelize(range(50), num_partitions=4).map(
            lambda x: x * 2)
        rdd.cache()
        first = sorted(rdd.collect())
        second = sorted(rdd.collect())
        assert first == second == [x * 2 for x in range(50)]
        # Second run reads the cache: its plan has no LocalInput tasks.
        plan = ctx.compile(rdd)
        from repro.api.plan import CachedInput
        assert all(isinstance(t.input, CachedInput)
                   for t in plan.stages[0].tasks)

    def test_cache_then_downstream_job(self, engine):
        ctx = fresh_ctx(engine)
        base = ctx.parallelize(range(20), num_partitions=2)
        doubled = base.map(lambda x: x * 2)
        doubled.cache()
        doubled.collect()
        out = doubled.filter(lambda x: x >= 20).collect()
        assert sorted(out) == [x * 2 for x in range(10, 20)]


class TestEngineEquivalence:
    """The two engines must agree on results for a battery of jobs."""

    def run_both(self, build):
        results = {}
        for engine in ENGINES:
            ctx = dfs_ctx(engine, seed=3)
            results[engine] = build(ctx)
        return results

    def test_aggregation_job(self):
        def job(ctx):
            return sorted(
                ctx.text_file("input")
                .map(lambda kv: (kv[0] % 10, 1))
                .reduce_by_key(lambda a, b: a + b, num_partitions=3)
                .collect())

        results = self.run_both(job)
        assert results["spark"] == results["monospark"]

    def test_multi_stage_job(self):
        def job(ctx):
            return sorted(
                ctx.text_file("input")
                .map(lambda kv: (kv[0] % 5, kv[0]))
                .reduce_by_key(lambda a, b: a + b, num_partitions=2)
                .map(lambda kv: (kv[1] % 3, kv[0]))
                .group_by_key(num_partitions=2)
                .map(lambda kv: (kv[0], sorted(kv[1])))
                .collect())

        results = self.run_both(job)
        assert results["spark"] == results["monospark"]


class TestConcurrentJobs:
    @pytest.mark.parametrize("engine", ENGINES)
    def test_two_jobs_share_cluster(self, engine):
        ctx = fresh_ctx(engine, machines=2)
        rdd1 = (ctx.parallelize([("a", 1)] * 40, num_partitions=4)
                .reduce_by_key(lambda a, b: a + b, num_partitions=2))
        rdd2 = (ctx.parallelize([("b", 2)] * 40, num_partitions=4)
                .reduce_by_key(lambda a, b: a + b, num_partitions=2))
        from repro.api.plan import CollectOutput
        plans = [ctx.compile(rdd1, CollectOutput(), name="job1"),
                 ctx.compile(rdd2, CollectOutput(), name="job2")]
        results = ctx.run_jobs(plans)
        assert results[0].all_records() == [("a", 40)]
        assert results[1].all_records() == [("b", 80)]
        # Concurrent: their execution windows overlap.
        assert results[0].start == results[1].start
