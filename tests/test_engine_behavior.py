"""Behavioral tests: the mechanisms behind the paper's results.

These check the *shape* claims the benchmarks rely on: MonoSpark loses
with one wave of tasks but catches up with several (Fig 8), per-resource
scheduling avoids HDD seek contention (§5.4), buffered writes give Spark
an edge that write-through removes (§5.3 / Fig 5 query 1c), and
MonoSpark emits complete monotask records while using more memory
(§3.5).
"""

import pytest

from repro.api import AnalyticsContext
from repro.api.ops import OpCost
from repro.cluster import hdd_cluster
from repro.config import MB, GB
from repro.datamodel import Partition
from repro.metrics.events import (CPU, DISK, NETWORK, PHASE_COMPUTE,
                                  PHASE_INPUT_READ)


def make_input(cluster, blocks, block_mb=64, records_per_block=20,
               name="input"):
    payloads = []
    for b in range(blocks):
        records = [(b * records_per_block + i, i)
                   for i in range(records_per_block)]
        payloads.append(Partition.from_records(
            records, record_count=records_per_block,
            data_bytes=block_mb * MB))
    cluster.dfs.create_file(name, payloads, [block_mb * MB] * blocks)


def read_compute_job(ctx, cpu_s_per_block, block_records=20):
    per_record = cpu_s_per_block / block_records
    return (ctx.text_file("input")
            .map(lambda kv: kv, cost=OpCost(per_record_s=per_record),
                 size_ratio=1.0)
            .count())


def run_read_compute(engine, machines, blocks, cpu_s_per_block=1.0):
    cluster = hdd_cluster(num_machines=machines)
    make_input(cluster, blocks)
    ctx = AnalyticsContext(cluster, engine=engine)
    read_compute_job(ctx, cpu_s_per_block)
    return ctx.last_result.duration, ctx


class TestWaveEffect:
    """Fig 8: one wave favors Spark; several waves reach parity."""

    def test_single_wave_spark_wins(self):
        # Compute-heavy, as in Fig 8 ("reads input data and then computes
        # on it"): with one wave there is nothing for MonoSpark to
        # pipeline reads against, so the serialized read+compute loses.
        cores_total = 2 * 8
        spark, _ = run_read_compute("spark", machines=2, blocks=cores_total,
                                    cpu_s_per_block=3.0)
        mono, _ = run_read_compute("monospark", machines=2,
                                   blocks=cores_total, cpu_s_per_block=3.0)
        assert spark < mono

    def test_many_waves_mono_catches_up(self):
        blocks = 2 * 8 * 6  # six waves
        spark, _ = run_read_compute("spark", machines=2, blocks=blocks,
                                    cpu_s_per_block=3.0)
        mono, _ = run_read_compute("monospark", machines=2, blocks=blocks,
                                   cpu_s_per_block=3.0)
        assert mono <= spark * 1.15


class TestDiskContention:
    """§5.4: per-disk scheduling doubles HDD throughput under load."""

    def run_disk_bound(self, engine):
        # Mixed reads and writes on the same disks (the §5.4 scenario):
        # Spark's tasks interleave both at fine granularity while the
        # flusher writes back, whereas MonoSpark's per-disk scheduler
        # runs one large monotask at a time.
        cluster = hdd_cluster(num_machines=1,
                              buffer_cache_bytes=256 * MB,
                              dirty_background_bytes=64 * MB)
        make_input(cluster, blocks=16, block_mb=128)
        ctx = AnalyticsContext(cluster, engine=engine)
        ctx.text_file("input").save_as_text_file("out")
        return ctx

    def test_monospark_avoids_seek_storm(self):
        spark_ctx = self.run_disk_bound("spark")
        mono_ctx = self.run_disk_bound("monospark")
        spark_time = spark_ctx.last_result.duration
        mono_time = mono_ctx.last_result.duration
        # Spark's 8 concurrent tasks interleave on 2 disks and pay seeks;
        # MonoSpark reads sequentially, one monotask per disk.
        assert mono_time < spark_time * 0.75
        spark_seeks = sum(d.seeks for m in spark_ctx.cluster.machines
                          for d in m.disks)
        mono_seeks = sum(d.seeks for m in mono_ctx.cluster.machines
                         for d in m.disks)
        assert mono_seeks < spark_seeks / 5


class TestBufferCacheAdvantage:
    """§5.3: Spark leaves writes in the buffer cache; MonoSpark flushes."""

    def run_write_heavy(self, engine, **options):
        # Small read, 4x write amplification: the write path dominates,
        # as in Big Data Benchmark query 1c (§5.3).
        cluster = hdd_cluster(num_machines=1)
        make_input(cluster, blocks=8, block_mb=16)
        ctx = AnalyticsContext(cluster, engine=engine, **options)
        (ctx.text_file("input")
            .map(lambda kv: kv, size_ratio=4.0)
            .save_as_text_file("out"))
        return ctx.last_result.duration

    def test_buffered_spark_beats_monospark_on_writes(self):
        spark = self.run_write_heavy("spark")
        mono = self.run_write_heavy("monospark")
        assert spark < mono

    def test_write_through_spark_loses_the_edge(self):
        flushed = self.run_write_heavy("spark", flush_writes=True)
        buffered = self.run_write_heavy("spark")
        mono = self.run_write_heavy("monospark")
        assert flushed > buffered
        # Once Spark also pays for the writes, MonoSpark is comparable.
        assert mono <= flushed * 1.15


class TestMonotaskRecords:
    """§6.1: monotask self-reports cover every resource the job used."""

    def run_shuffle_job(self):
        cluster = hdd_cluster(num_machines=2)
        make_input(cluster, blocks=8, block_mb=32)
        ctx = AnalyticsContext(cluster, engine="monospark")
        (ctx.text_file("input")
            .map(lambda kv: (kv[0] % 7, 1), size_ratio=1.0)
            .reduce_by_key(lambda a, b: a + b, num_partitions=4)
            .collect())
        return ctx

    def test_all_resources_reported(self):
        ctx = self.run_shuffle_job()
        records = ctx.metrics.monotasks
        resources = {r.resource for r in records}
        assert {CPU, DISK, NETWORK} <= resources

    def test_input_read_bytes_match_file(self):
        ctx = self.run_shuffle_job()
        job_id = ctx.last_result.job_id
        input_bytes = sum(
            r.nbytes for r in ctx.metrics.monotasks
            if r.job_id == job_id and r.resource == DISK
            and r.phase == PHASE_INPUT_READ)
        assert input_bytes == pytest.approx(8 * 32 * MB, rel=0.01)

    def test_compute_monotasks_split_phases(self):
        ctx = self.run_shuffle_job()
        computes = [r for r in ctx.metrics.monotasks
                    if r.resource == CPU and r.phase == PHASE_COMPUTE]
        assert computes
        for record in computes:
            assert record.duration == pytest.approx(
                record.deserialize_s + record.op_s + record.serialize_s)
        assert any(r.deserialize_s > 0 for r in computes)

    def test_monotask_windows_within_task_windows(self):
        ctx = self.run_shuffle_job()
        for record in ctx.metrics.monotasks:
            assert record.end >= record.start
            assert record.queue_s >= 0


class TestMemoryFootprint:
    """§3.5: MonoSpark materializes whole partitions; Spark streams."""

    def peak_memory(self, engine):
        cluster = hdd_cluster(num_machines=1)
        make_input(cluster, blocks=8, block_mb=128)
        ctx = AnalyticsContext(cluster, engine=engine)
        read_compute_job(ctx, cpu_s_per_block=0.1)
        return max(m.memory.peak for m in cluster.machines)

    def test_monospark_uses_more_memory(self):
        assert self.peak_memory("monospark") > self.peak_memory("spark")


class TestDeterminism:
    def test_same_seed_same_timing(self):
        durations = []
        for _ in range(2):
            cluster = hdd_cluster(num_machines=2, seed=5)
            make_input(cluster, blocks=12)
            ctx = AnalyticsContext(cluster, engine="monospark")
            (ctx.text_file("input")
                .map(lambda kv: (kv[0] % 3, 1), size_ratio=1.0)
                .reduce_by_key(lambda a, b: a + b, num_partitions=4)
                .collect())
            durations.append(ctx.last_result.duration)
        assert durations[0] == durations[1]
