"""Tests for the Chrome trace exporter."""

import json

import pytest

from repro import AnalyticsContext, MB, hdd_cluster
from repro.datamodel import Partition
from repro.errors import ModelError
from repro.metrics.chrometrace import (DRIVER_PID, trace_events,
                                       write_chrome_trace)


def run_job(engine="monospark"):
    cluster = hdd_cluster(num_machines=2)
    payloads = [Partition.from_records([(i, i)], record_count=1,
                                       data_bytes=32 * MB)
                for i in range(8)]
    cluster.dfs.create_file("input", payloads, [32 * MB] * 8)
    ctx = AnalyticsContext(cluster, engine=engine)
    (ctx.text_file("input")
        .map(lambda kv: (kv[0] % 2, 1), size_ratio=1.0)
        .reduce_by_key(lambda a, b: a + b, num_partitions=2)
        .collect())
    return ctx


def run_shuffle_job(engine="monospark"):
    """A job whose every map feeds every reducer, forcing cross-machine
    shuffle flows (each partition carries both keys)."""
    cluster = hdd_cluster(num_machines=2)
    payloads = [Partition.from_records([(i, 0), (i, 1)], record_count=2,
                                       data_bytes=32 * MB)
                for i in range(8)]
    cluster.dfs.create_file("input", payloads, [32 * MB] * 8)
    ctx = AnalyticsContext(cluster, engine=engine)
    (ctx.text_file("input")
        .map(lambda kv: (kv[1] % 2, 1), size_ratio=1.0)
        .reduce_by_key(lambda a, b: a + b, num_partitions=2)
        .collect())
    return ctx


class TestTraceEvents:
    def test_events_cover_resources_and_tasks(self):
        ctx = run_job()
        events = trace_events(ctx.metrics)
        categories = {e.get("cat") for e in events if e["ph"] == "X"}
        assert "cpu" in categories
        assert "disk0" in categories
        assert "tasks" in categories

    def test_durations_nonnegative_microseconds(self):
        ctx = run_job()
        for event in trace_events(ctx.metrics):
            if event["ph"] == "X":
                assert event["dur"] >= 0
                assert event["ts"] >= 0

    def test_job_filter(self):
        ctx = run_job()
        ctx.parallelize(range(4), num_partitions=2).count()
        job0 = trace_events(ctx.metrics, job_id=0)
        all_jobs = trace_events(ctx.metrics)
        assert len(all_jobs) > len(job0)

    def test_metadata_per_machine(self):
        ctx = run_job()
        events = trace_events(ctx.metrics)
        names = [e for e in events
                 if e["ph"] == "M" and e["name"] == "process_name"]
        assert {e["pid"] for e in names} == {0, 1, DRIVER_PID}

    def test_thread_metadata_orders_tracks(self):
        # The _TRACK_ORDER satellite: every (machine, track) pair gets a
        # thread_name and a thread_sort_index placing cpu < disks <
        # network < tasks.
        ctx = run_shuffle_job()
        events = trace_events(ctx.metrics)
        sort_index = {(e["pid"], e["tid"]): e["args"]["sort_index"]
                      for e in events
                      if e["ph"] == "M" and e["name"] == "thread_sort_index"}
        named = {(e["pid"], e["tid"]) for e in events
                 if e["ph"] == "M" and e["name"] == "thread_name"}
        slice_tracks = {(e["pid"], e["tid"]) for e in events
                        if e["ph"] == "X"}
        assert slice_tracks <= set(sort_index) == named
        for machine in (0, 1):
            assert (sort_index[(machine, "cpu")]
                    < sort_index[(machine, "disk0")]
                    < sort_index[(machine, "disk1")]
                    < sort_index[(machine, "network")]
                    < sort_index[(machine, "tasks")])

    def test_flow_events_link_transfers(self):
        ctx = run_shuffle_job()
        events = trace_events(ctx.metrics)
        starts = {e["id"]: e for e in events if e["ph"] == "s"}
        finishes = {e["id"]: e for e in events if e["ph"] == "f"}
        assert starts, "shuffle run should record producer->consumer flows"
        assert set(starts) == set(finishes)
        for fid, start in starts.items():
            finish = finishes[fid]
            assert start["tid"] == finish["tid"] == "network"
            assert start["ts"] <= finish["ts"]
            assert start["pid"] != finish["pid"]  # remote flow

    def test_async_job_and_stage_spans(self):
        ctx = run_job()
        events = trace_events(ctx.metrics)
        begins = [e for e in events if e["ph"] == "b"]
        ends = [e for e in events if e["ph"] == "e"]
        assert {e["id"] for e in begins} == {e["id"] for e in ends}
        assert all(e["pid"] == DRIVER_PID for e in begins + ends)
        cats = {e["cat"] for e in begins}
        assert cats == {"job", "stage"}

    def test_unknown_job_rejected(self):
        ctx = run_job()
        with pytest.raises(ModelError):
            trace_events(ctx.metrics, job_id=99)

    def test_spark_engine_exports_task_windows(self):
        ctx = run_job(engine="spark")
        events = trace_events(ctx.metrics)
        assert all(e["cat"] == "tasks" for e in events if e["ph"] == "X")


class TestWriteChromeTrace:
    def test_writes_valid_json(self, tmp_path):
        ctx = run_job()
        path = tmp_path / "trace.json"
        result = write_chrome_trace(ctx.metrics, str(path))
        assert result.path == str(path)
        assert result.events > 0
        loaded = json.loads(path.read_text())
        assert loaded["displayTimeUnit"] == "ms"
        assert len(loaded["traceEvents"]) == result.events

    def test_write_is_atomic(self, tmp_path):
        # A failed export must not clobber an existing file or leave a
        # temp file behind.
        ctx = run_job()
        path = tmp_path / "trace.json"
        path.write_text("precious")
        empty = AnalyticsContext(hdd_cluster(num_machines=1)).metrics
        with pytest.raises(ModelError):
            write_chrome_trace(empty, str(path))
        assert path.read_text() == "precious"
        assert [p.name for p in tmp_path.iterdir()] == ["trace.json"]
        write_chrome_trace(ctx.metrics, str(path))
        assert json.loads(path.read_text())["traceEvents"]
        assert [p.name for p in tmp_path.iterdir()] == ["trace.json"]
