"""Tests for the Chrome trace exporter."""

import json

import pytest

from repro import AnalyticsContext, MB, hdd_cluster
from repro.datamodel import Partition
from repro.errors import ModelError
from repro.metrics.chrometrace import trace_events, write_chrome_trace


def run_job(engine="monospark"):
    cluster = hdd_cluster(num_machines=2)
    payloads = [Partition.from_records([(i, i)], record_count=1,
                                       data_bytes=32 * MB)
                for i in range(8)]
    cluster.dfs.create_file("input", payloads, [32 * MB] * 8)
    ctx = AnalyticsContext(cluster, engine=engine)
    (ctx.text_file("input")
        .map(lambda kv: (kv[0] % 2, 1), size_ratio=1.0)
        .reduce_by_key(lambda a, b: a + b, num_partitions=2)
        .collect())
    return ctx


class TestTraceEvents:
    def test_events_cover_resources_and_tasks(self):
        ctx = run_job()
        events = trace_events(ctx.metrics)
        categories = {e.get("cat") for e in events if e["ph"] == "X"}
        assert "cpu" in categories
        assert "disk0" in categories
        assert "tasks" in categories

    def test_durations_nonnegative_microseconds(self):
        ctx = run_job()
        for event in trace_events(ctx.metrics):
            if event["ph"] == "X":
                assert event["dur"] >= 0
                assert event["ts"] >= 0

    def test_job_filter(self):
        ctx = run_job()
        ctx.parallelize(range(4), num_partitions=2).count()
        job0 = trace_events(ctx.metrics, job_id=0)
        all_jobs = trace_events(ctx.metrics)
        assert len(all_jobs) > len(job0)

    def test_metadata_per_machine(self):
        ctx = run_job()
        events = trace_events(ctx.metrics)
        names = [e for e in events if e["ph"] == "M"]
        assert {e["pid"] for e in names} == {0, 1}

    def test_unknown_job_rejected(self):
        ctx = run_job()
        with pytest.raises(ModelError):
            trace_events(ctx.metrics, job_id=99)

    def test_spark_engine_exports_task_windows(self):
        ctx = run_job(engine="spark")
        events = trace_events(ctx.metrics)
        assert all(e["cat"] == "tasks" for e in events if e["ph"] == "X")


class TestWriteChromeTrace:
    def test_writes_valid_json(self, tmp_path):
        ctx = run_job()
        path = tmp_path / "trace.json"
        count = write_chrome_trace(ctx.metrics, str(path))
        assert count > 0
        loaded = json.loads(path.read_text())
        assert loaded["displayTimeUnit"] == "ms"
        assert len(loaded["traceEvents"]) == count
