"""Unit tests for the Spark-style baseline engine's mechanics."""

import pytest

from repro.api import AnalyticsContext
from repro.api.ops import OpCost
from repro.cluster import hdd_cluster
from repro.config import MB
from repro.datamodel import Partition


def dfs_cluster(blocks=8, block_mb=64, machines=1, **overrides):
    cluster = hdd_cluster(num_machines=machines, **overrides)
    payloads = [Partition.from_records([(i, i)], record_count=1,
                                       data_bytes=block_mb * MB)
                for i in range(blocks)]
    cluster.dfs.create_file("input", payloads, [block_mb * MB] * blocks)
    return cluster


class TestPipelining:
    def test_read_overlaps_compute(self):
        """A chunk-pipelined task takes ~max(read, compute), not the sum."""
        cluster = dfs_cluster(blocks=1, block_mb=128)
        ctx = AnalyticsContext(cluster, engine="spark")
        compute_s = 2.0
        (ctx.text_file("input")
            .map(lambda kv: kv, cost=OpCost(per_record_s=compute_s),
                 size_ratio=1.0)
            .count())
        duration = ctx.last_result.duration
        read_s = 128 * MB / cluster.spec.disks[0].throughput_bps
        total_cpu_s = sum(u.cpu_s for u in ctx.metrics.resource_usage)
        # Pipelined: total ~= cpu + one chunk of ramp-in, far below the
        # unpipelined read-then-compute sum.
        assert duration < (read_s + total_cpu_s) * 0.9
        assert duration >= max(read_s, total_cpu_s)

    def test_slots_limit_concurrency(self):
        """Fewer slots -> longer runtime for a CPU-bound stage."""
        def run(slots):
            cluster = dfs_cluster(blocks=8, block_mb=1)
            ctx = AnalyticsContext(cluster, engine="spark",
                                   slots_per_machine=slots)
            (ctx.text_file("input")
                .map(lambda kv: kv, cost=OpCost(per_record_s=1.0),
                     size_ratio=1.0)
                .count())
            return ctx.last_result.duration

        assert run(2) > run(8) * 1.5

    def test_oversubscribed_slots_contend_for_cores(self):
        """More slots than cores cannot beat slots == cores on pure CPU."""
        def run(slots):
            cluster = dfs_cluster(blocks=32, block_mb=1)
            ctx = AnalyticsContext(cluster, engine="spark",
                                   slots_per_machine=slots)
            (ctx.text_file("input")
                .map(lambda kv: kv, cost=OpCost(per_record_s=0.5),
                     size_ratio=1.0)
                .count())
            return ctx.last_result.duration

        assert run(32) >= run(8) * 0.95


class TestBufferCacheBehaviour:
    def test_outputs_land_in_cache_not_disk(self):
        cluster = dfs_cluster(blocks=4, block_mb=32)
        ctx = AnalyticsContext(cluster, engine="spark")
        ctx.text_file("input").save_as_text_file("out")
        machine = cluster.machine(0)
        # Writes went to the cache; little or nothing hit the platter yet.
        written = sum(d.bytes_written for d in machine.disks)
        assert machine.cache.dirty_bytes + written >= 4 * 32 * MB * 0.99
        assert machine.cache.dirty_bytes > 0

    def test_flush_writes_forces_disk(self):
        cluster = dfs_cluster(blocks=4, block_mb=32)
        ctx = AnalyticsContext(cluster, engine="spark", flush_writes=True)
        ctx.text_file("input").save_as_text_file("out")
        machine = cluster.machine(0)
        assert sum(d.bytes_written for d in machine.disks) >= 4 * 32 * MB
        assert machine.cache.dirty_bytes == 0

    def test_shuffle_reads_hit_cache_when_recent(self):
        cluster = dfs_cluster(blocks=4, block_mb=16)
        ctx = AnalyticsContext(cluster, engine="spark")
        (ctx.text_file("input")
            .map(lambda kv: (kv[0] % 2, 1), size_ratio=1.0)
            .reduce_by_key(lambda a, b: a + b, num_partitions=2)
            .collect())
        machine = cluster.machine(0)
        # Reducers found the just-written shuffle buckets in cache.
        assert machine.cache.read_hits > 0


class TestResourceUsageRecords:
    def test_ground_truth_totals(self):
        cluster = dfs_cluster(blocks=4, block_mb=32)
        ctx = AnalyticsContext(cluster, engine="spark")
        ctx.text_file("input").count()
        usage = ctx.metrics.resource_usage
        assert len(usage) == 4
        assert sum(u.disk_bytes_read for u in usage) == pytest.approx(
            4 * 32 * MB)
        assert all(u.cpu_s > 0 for u in usage)

    def test_no_monotask_records_from_spark(self):
        cluster = dfs_cluster(blocks=2)
        ctx = AnalyticsContext(cluster, engine="spark")
        ctx.text_file("input").count()
        assert ctx.metrics.monotasks == []
