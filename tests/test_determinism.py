"""Same-seed determinism property tests for the simulation kernel.

The kernel's hot-path machinery (the hybrid immediate/heap event queue,
batched HDD chunk transfers, busy-tracker compaction) must preserve the
determinism contract: the same seed produces the identical event
sequence, so event counts, per-job finish times, and critical-path
attribution all match exactly -- on both engines.  These tests run the
same seeded serving stream twice and diff every observable; any
nondeterminism in queue ordering or completion batching shows up as an
exact-equality failure here.
"""

import pytest

from repro.api.context import AnalyticsContext
from repro.cluster import hdd_cluster
from repro.serve import (JobServer, PoissonArrivals, sort_template,
                         wordcount_template)
from repro.trace.critpath import critical_path

SEEDS = [0, 7, 42]


def run_stream(engine: str, seed: int):
    """One seeded serving stream; returns every determinism observable."""
    cluster = hdd_cluster(num_machines=2, num_disks=2, seed=seed)
    ctx = AnalyticsContext(cluster, engine=engine)
    server = JobServer(ctx, policy="fifo", seed=seed)
    server.add_tenant("t")
    if seed % 2:
        template = wordcount_template(ctx, num_blocks=2, block_mb=4.0,
                                      seed=seed)
    else:
        template = sort_template(ctx, total_gb=0.05, num_tasks=4, seed=seed)
    server.add_workload("t", template,
                        PoissonArrivals(0.2, horizon_s=60.0))
    server.run()
    env = ctx.engine.env

    jobs = sorted(ctx.metrics.jobs)
    finishes = [(job_id, ctx.metrics.jobs[job_id].start,
                 ctx.metrics.jobs[job_id].end) for job_id in jobs]
    paths = []
    for job_id in jobs:
        record = ctx.metrics.jobs[job_id]
        if record.end != record.end:  # NaN: unfinished
            continue
        report = critical_path(ctx.metrics, job_id, engine=engine)
        paths.append((job_id, report.attributable,
                      [(s.start, s.end, s.kind, s.resource, s.machine_id,
                        s.phase, s.span_id) for s in report.segments]))
    return {
        "events_scheduled": env.events_scheduled,
        "final_time": env.now,
        "finishes": finishes,
        "paths": paths,
    }


class TestSameSeedSameRun:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_monospark_identical(self, seed):
        assert run_stream("monospark", seed) == run_stream("monospark", seed)

    @pytest.mark.parametrize("seed", SEEDS)
    def test_spark_identical(self, seed):
        assert run_stream("spark", seed) == run_stream("spark", seed)

    def test_different_seeds_differ(self):
        # Sanity check that the observables are sensitive at all: two
        # different seeds must not collide on the full fingerprint.
        assert run_stream("monospark", 0) != run_stream("monospark", 1)
