"""Same-seed determinism property tests for the simulation kernel.

The kernel's hot-path machinery (the hybrid immediate/heap event queue,
batched HDD chunk transfers, busy-tracker compaction) must preserve the
determinism contract: the same seed produces the identical event
sequence, so event counts, per-job finish times, and critical-path
attribution all match exactly -- on both engines.  These tests run the
same seeded serving stream twice and diff every observable; any
nondeterminism in queue ordering or completion batching shows up as an
exact-equality failure here.
"""

import pytest

from repro.api.context import AnalyticsContext
from repro.cluster import hdd_cluster
from repro.serve import (JobServer, PoissonArrivals, sort_template,
                         wordcount_template)
from repro.trace.critpath import critical_path

SEEDS = [0, 7, 42]


def run_stream(engine: str, seed: int):
    """One seeded serving stream; returns every determinism observable."""
    cluster = hdd_cluster(num_machines=2, num_disks=2, seed=seed)
    ctx = AnalyticsContext(cluster, engine=engine)
    server = JobServer(ctx, policy="fifo", seed=seed)
    server.add_tenant("t")
    if seed % 2:
        template = wordcount_template(ctx, num_blocks=2, block_mb=4.0,
                                      seed=seed)
    else:
        template = sort_template(ctx, total_gb=0.05, num_tasks=4, seed=seed)
    server.add_workload("t", template,
                        PoissonArrivals(0.2, horizon_s=60.0))
    server.run()
    env = ctx.engine.env

    jobs = sorted(ctx.metrics.jobs)
    finishes = [(job_id, ctx.metrics.jobs[job_id].start,
                 ctx.metrics.jobs[job_id].end) for job_id in jobs]
    paths = []
    for job_id in jobs:
        record = ctx.metrics.jobs[job_id]
        if record.end != record.end:  # NaN: unfinished
            continue
        report = critical_path(ctx.metrics, job_id, engine=engine)
        paths.append((job_id, report.attributable,
                      [(s.start, s.end, s.kind, s.resource, s.machine_id,
                        s.phase, s.span_id) for s in report.segments]))
    return {
        "events_scheduled": env.events_scheduled,
        "final_time": env.now,
        "finishes": finishes,
        "paths": paths,
    }


class TestSameSeedSameRun:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_monospark_identical(self, seed):
        assert run_stream("monospark", seed) == run_stream("monospark", seed)

    @pytest.mark.parametrize("seed", SEEDS)
    def test_spark_identical(self, seed):
        assert run_stream("spark", seed) == run_stream("spark", seed)

    def test_different_seeds_differ(self):
        # Sanity check that the observables are sensitive at all: two
        # different seeds must not collide on the full fingerprint.
        assert run_stream("monospark", 0) != run_stream("monospark", 1)


# ---------------------------------------------------------------------------
# Control plane: checkpointing must not perturb job timing
# ---------------------------------------------------------------------------

def run_plane_stream(seed: int, checkpoint: bool):
    """One seeded multi-driver stream; job-timing observables only.

    The checkpoint tier rides a dedicated metadata network and commits
    its content at issue time, so turning checkpointing off must leave
    every job's finish time and critical path float-identical --
    ``events_scheduled`` legitimately differs (the checkpoint I/O
    events themselves), so it is deliberately NOT part of this
    fingerprint.
    """
    from repro.controlplane import ControlPlane, ControlPlanePolicy

    cluster = hdd_cluster(num_machines=2, num_disks=2, seed=seed)
    ctx = AnalyticsContext(cluster, engine="monospark")
    policy = ControlPlanePolicy(control_service_s=0.05,
                                checkpoint=checkpoint, failover=checkpoint)
    plane = ControlPlane(ctx, num_drivers=2, config=policy, seed=seed)
    template = wordcount_template(ctx, num_blocks=2, block_mb=4.0,
                                  seed=seed)
    for tenant in ("alpha", "bravo"):
        plane.add_workload(tenant, template,
                           PoissonArrivals(0.2, horizon_s=40.0))
    plane.run()
    jobs = sorted(ctx.metrics.jobs)
    finishes = [(job_id, ctx.metrics.jobs[job_id].start,
                 ctx.metrics.jobs[job_id].end) for job_id in jobs]
    paths = []
    for job_id in jobs:
        record = ctx.metrics.jobs[job_id]
        if record.end != record.end:  # NaN: unfinished
            continue
        report = critical_path(ctx.metrics, job_id, engine="monospark")
        paths.append((job_id, report.attributable,
                      [(s.start, s.end, s.kind, s.resource, s.machine_id,
                        s.phase, s.span_id) for s in report.segments]))
    return {"finishes": finishes, "paths": paths}


class TestControlPlaneDeterminism:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_same_seed_identical(self, seed):
        assert (run_plane_stream(seed, checkpoint=True)
                == run_plane_stream(seed, checkpoint=True))

    @pytest.mark.parametrize("seed", SEEDS)
    def test_checkpointing_is_timing_invisible(self, seed):
        assert (run_plane_stream(seed, checkpoint=True)
                == run_plane_stream(seed, checkpoint=False))
