"""Unit tests for partitions, serialization costs, and the shuffle registry."""

import pytest

from repro.config import CostModel, MB
from repro.datamodel import (COMPRESSED, DESERIALIZED, PLAIN, MapOutputRegistry,
                             Partition, deserialize_seconds,
                             estimate_record_bytes, serialize_seconds)
from repro.errors import ShuffleError, SimulationError


class TestPartition:
    def test_from_records_measures_sizes(self):
        part = Partition.from_records([(1, "ab"), (2, "cd")])
        assert part.record_count == 2
        assert part.data_bytes > 0

    def test_explicit_modeled_sizes(self):
        part = Partition.from_records([(1, 2)], record_count=1000,
                                      data_bytes=64 * MB)
        assert part.scale == 1000.0
        assert part.mean_record_bytes == pytest.approx(64 * MB / 1000)

    def test_empty_partition(self):
        part = Partition.empty()
        assert len(part) == 0
        assert part.scale == 1.0
        assert part.mean_record_bytes == 0.0

    def test_merge_sums_modeled_sizes(self):
        a = Partition.from_records([1], record_count=10, data_bytes=100)
        b = Partition.from_records([2, 3], record_count=20, data_bytes=200)
        merged = Partition.merge([a, b])
        assert merged.records == [1, 2, 3]
        assert merged.record_count == 30
        assert merged.data_bytes == 300

    def test_split_proportionally(self):
        part = Partition.from_records([1, 2, 3, 4], record_count=400,
                                      data_bytes=4000)
        buckets = [[1], [2, 3, 4]]
        parts = part.split_proportionally(buckets)
        assert parts[0].record_count == pytest.approx(100)
        assert parts[1].data_bytes == pytest.approx(3000)

    def test_split_empty_records_divides_evenly(self):
        part = Partition(records=[], record_count=100, data_bytes=1000)
        parts = part.split_proportionally([[], []])
        assert parts[0].data_bytes == pytest.approx(500)

    def test_negative_sizes_rejected(self):
        with pytest.raises(SimulationError):
            Partition(records=[], record_count=-1, data_bytes=0)


class TestEstimateRecordBytes:
    def test_primitives(self):
        assert estimate_record_bytes(7) == 8.0
        assert estimate_record_bytes(1.5) == 8.0
        assert estimate_record_bytes(None) == 1.0
        assert estimate_record_bytes(True) == 1.0
        assert estimate_record_bytes("abcd") == 8.0

    def test_containers_recursive(self):
        assert estimate_record_bytes((1, 2)) == 8.0 + 16.0
        assert estimate_record_bytes({"a": 1}) > 8.0

    def test_custom_weight_attribute(self):
        class Blob:
            modeled_bytes = 4096

        assert estimate_record_bytes(Blob()) == 4096.0


class TestSerializationCosts:
    def setup_method(self):
        self.cost = CostModel()
        self.part = Partition.from_records([1] * 10, record_count=1000,
                                           data_bytes=10 * MB)

    def test_deserialize_plain(self):
        seconds = deserialize_seconds(self.part, PLAIN, self.cost)
        expected = (self.cost.deserialize_s_per_byte * 10 * MB
                    + self.cost.deserialize_s_per_record * 1000)
        assert seconds == pytest.approx(expected)

    def test_deserialized_format_is_free(self):
        assert deserialize_seconds(self.part, DESERIALIZED, self.cost) == 0.0
        assert serialize_seconds(self.part, DESERIALIZED, self.cost) == 0.0

    def test_compressed_costs_more_cpu_but_fewer_bytes(self):
        plain = deserialize_seconds(self.part, PLAIN, self.cost)
        compressed = deserialize_seconds(self.part, COMPRESSED, self.cost)
        assert compressed > plain
        assert COMPRESSED.stored_bytes(10 * MB) == pytest.approx(5 * MB)

    def test_serialize_symmetry(self):
        seconds = serialize_seconds(self.part, PLAIN, self.cost)
        assert seconds > 0


class TestMapOutputRegistry:
    def test_register_and_fetch(self):
        registry = MapOutputRegistry()
        registry.expect_maps(0, 2)
        for map_index in range(2):
            registry.register_map_output(
                0, map_index, machine_id=map_index, disk_index=0,
                buckets={0: Partition.from_records([map_index])})
        buckets = registry.buckets_for_reduce(0, 0)
        assert [b.map_index for b in buckets] == [0, 1]
        assert buckets[0].machine_id == 0

    def test_incomplete_shuffle_rejected(self):
        registry = MapOutputRegistry()
        registry.expect_maps(0, 3)
        registry.register_map_output(0, 0, 0, 0, {})
        with pytest.raises(ShuffleError):
            registry.buckets_for_reduce(0, 0)

    def test_unknown_shuffle_rejected(self):
        registry = MapOutputRegistry()
        with pytest.raises(ShuffleError):
            registry.buckets_for_reduce(42, 0)

    def test_total_shuffle_bytes(self):
        registry = MapOutputRegistry()
        registry.expect_maps(0, 1)
        registry.register_map_output(0, 0, 0, None, {
            0: Partition.from_records([], record_count=0, data_bytes=100),
            1: Partition.from_records([], record_count=0, data_bytes=50),
        })
        assert registry.total_shuffle_bytes(0) == 150

    def test_in_memory_bucket_flag(self):
        registry = MapOutputRegistry()
        registry.expect_maps(0, 1)
        registry.register_map_output(0, 0, 3, None,
                                     {0: Partition.from_records([1])})
        bucket = registry.buckets_for_reduce(0, 0)[0]
        assert bucket.in_memory
        assert bucket.block_id == "shuffle0-m0-r0"
