"""Tests for the always-on clarity pipeline (``repro.clarity``)."""

import pytest

from repro.clarity import (AGGREGATIONS, CapacityAdvisor, ClarityAggregator,
                           TimeSeriesStore, default_candidates)
from repro.clarity.advisor import Candidate
from repro.clarity.validate import (ClarityWorkload, run_clarity_serving,
                                    validate_advisor)
from repro.cluster import ssd_cluster
from repro.config import MB, SSD
from repro.errors import ClarityError
from repro.model import WhatIf, hardware_profile
from repro.trace.telemetry import TelemetryRegistry

#: A small, fast serving workload shared by the pipeline tests.
SMALL = ClarityWorkload(duration_s=60.0, rate_per_s=0.05, sort_gb=0.5,
                        sort_tasks=32)


@pytest.fixture(scope="module")
def mono_run():
    return run_clarity_serving(SMALL)


@pytest.fixture(scope="module")
def spark_run():
    return run_clarity_serving(SMALL, engine="spark")


class TestTimeSeriesStore:
    def test_roundtrip_and_unknown_series(self):
        store = TimeSeriesStore()
        store.append("queue", 1.0, 3.0)
        store.append("queue", 2.0, 4.0)
        store.append("queue", 2.0, 5.0, labels=(("machine", "1"),))
        assert store.points("queue") == [(1.0, 3.0), (2.0, 4.0)]
        assert store.points("queue", labels=(("machine", "1"),)) == \
            [(2.0, 5.0)]
        assert store.points("nope") == []
        assert store.latest("queue") == (2.0, 4.0)
        assert store.latest("nope") is None
        assert len(store) == 3
        assert store.series() == [("queue", ()), ("queue",
                                                  (("machine", "1"),))]

    def test_capacity_evicts_oldest(self):
        store = TimeSeriesStore(capacity_per_series=4)
        for t in range(10):
            store.append("m", float(t), float(t))
        assert store.points("m") == [(6.0, 6.0), (7.0, 7.0),
                                     (8.0, 8.0), (9.0, 9.0)]

    def test_age_retention_drops_old_points(self):
        store = TimeSeriesStore(retention_s=5.0)
        for t in range(11):
            store.append("m", float(t), float(t))
        assert store.points("m")[0][0] == 5.0
        assert store.points("m")[-1][0] == 10.0

    def test_out_of_order_append_rejected_equal_time_allowed(self):
        store = TimeSeriesStore()
        store.append("m", 5.0, 1.0)
        store.append("m", 5.0, 2.0)  # same instant is fine
        with pytest.raises(ClarityError):
            store.append("m", 4.0, 3.0)

    def test_window_bounds_inclusive(self):
        store = TimeSeriesStore()
        for t in range(5):
            store.append("m", float(t), float(t))
        assert store.window("m", 1.0, 3.0) == [(1.0, 1.0), (2.0, 2.0),
                                               (3.0, 3.0)]
        assert store.window("nope", 0.0, 10.0) == []

    def test_aggregations(self):
        store = TimeSeriesStore()
        for t, v in [(0.0, 2.0), (1.0, 4.0), (2.0, 6.0), (3.0, 8.0)]:
            store.append("m", t, v)
        agg = lambda kind, **kw: store.aggregate("m", kind, 10.0, **kw)
        assert agg("mean") == pytest.approx(5.0)
        assert agg("min") == 2.0
        assert agg("max") == 8.0
        assert agg("sum") == 20.0
        assert agg("count") == 4.0
        assert agg("last") == 8.0
        assert agg("rate") == pytest.approx(2.0)  # (8-2)/(3-0)
        assert agg("p50") == pytest.approx(5.0)
        assert agg("p100") == 8.0
        # Explicit ``now`` narrows the window.
        assert store.aggregate("m", "count", 1.0, now=1.0) == 2.0

    def test_aggregate_edge_cases(self):
        store = TimeSeriesStore()
        assert store.aggregate("m", "mean", 10.0) is None  # no series
        store.append("m", 0.0, 7.0)
        assert store.aggregate("m", "rate", 10.0) == 0.0  # single point
        assert store.aggregate("m", "mean", 1.0, now=100.0) is None
        with pytest.raises(ClarityError):
            store.aggregate("m", "median", 10.0)
        with pytest.raises(ClarityError):
            store.aggregate("m", "pzz", 10.0)
        with pytest.raises(ClarityError):
            store.aggregate("m", "p200", 10.0)
        with pytest.raises(ClarityError):
            store.aggregate("m", "mean", 0.0)

    def test_constructor_validation(self):
        with pytest.raises(ClarityError):
            TimeSeriesStore(capacity_per_series=0)
        with pytest.raises(ClarityError):
            TimeSeriesStore(retention_s=-1.0)
        assert "mean" in AGGREGATIONS and "rate" in AGGREGATIONS

    @staticmethod
    def _compacted_store(appends=300, capacity=100):
        """A store driven far enough that the ring buffer compacted.

        With ``capacity`` 100, append 300 points: the logical start
        offset crosses the ``start > 64 and start * 2 >= len`` slice
        threshold several times, so windowed queries afterwards run
        against a physically compacted list, not just a large offset.
        """
        store = TimeSeriesStore(capacity_per_series=capacity)
        for t in range(appends):
            # Non-monotone values so percentiles are not trivial.
            store.append("m", float(t), float((t * 7) % 13))
        series = store._series[("m", ())]
        assert series._start == 0 and len(series._points) == capacity, \
            "test workload no longer triggers prefix compaction"
        return store

    def test_rate_and_percentiles_across_compaction(self):
        """Windowed aggregates are oblivious to buffer compaction.

        The same retained points in a fresh (never-evicted) store must
        produce identical rate/pNN answers, including for windows that
        straddle the retention boundary (reaching before the oldest
        retained point) and windows entirely inside the buffer.
        """
        store = self._compacted_store()
        fresh = TimeSeriesStore()
        for t, v in store.points("m"):
            fresh.append("m", t, v)
        oldest = store.points("m")[0][0]
        assert oldest == 200.0  # 300 appends, capacity 100
        windows = [
            (10.0, 299.0),     # inside the retained window
            (50.0, 230.0),     # straddles the eviction boundary
            (1000.0, 299.0),   # asks for far more than is retained
            (1.0, 200.5),      # tiny window at the boundary itself
        ]
        for agg in ("rate", "p50", "p95", "p99.9", "mean", "count"):
            for window_s, now in windows:
                assert store.aggregate("m", agg, window_s, now=now) == \
                    fresh.aggregate("m", agg, window_s, now=now), \
                    (agg, window_s, now)

    def test_window_and_latest_across_compaction(self):
        store = self._compacted_store()
        assert store.window("m", 250.0, 260.0) == \
            [(float(t), float((t * 7) % 13)) for t in range(250, 261)]
        # A window entirely evicted by capacity yields nothing.
        assert store.window("m", 0.0, 199.0) == []
        assert store.latest("m") == (299.0, float((299 * 7) % 13))
        assert len(store) == 100

    def test_rate_counter_idiom_across_eviction(self):
        """A counter's windowed rate survives losing its early points."""
        store = TimeSeriesStore(capacity_per_series=10)
        for t in range(200):
            store.append("total", float(t), 3.0 * t)  # 3/s counter
        assert store.aggregate("total", "rate", 5.0, now=199.0) == \
            pytest.approx(3.0)
        # Window wider than retention: rate falls back to the oldest
        # *retained* point, not the true start of the counter.
        assert store.aggregate("total", "rate", 1000.0, now=199.0) == \
            pytest.approx(3.0)


class TestWindowedPrometheus:
    def make_registry(self):
        registry = TelemetryRegistry()
        value = {"v": 0.0}
        registry.gauge("repro_test_depth", "a depth", lambda: value["v"],
                       machine=0)
        for t in range(8):
            value["v"] = float(t)
            registry.sample(float(t))
        return registry

    def test_default_rendering_has_no_window_gauges(self):
        page = self.make_registry().render_prometheus(now=7.0)
        assert "repro_test_depth" in page
        assert ":mean_" not in page

    def test_windowed_aggregates_rendered(self):
        page = self.make_registry().render_prometheus(
            now=7.0, windows=(4.0,), window_aggs=("mean", "p95", "rate"))
        assert '# TYPE repro_test_depth:mean_4s gauge' in page
        # Window [3, 7] -> values 3..7, mean 5.
        assert 'repro_test_depth:mean_4s{machine="0"} 5' in page
        assert 'repro_test_depth:rate_4s{machine="0"} 1' in page
        assert 'repro_test_depth:p95_4s{machine="0"}' in page

    def test_empty_window_series_omitted(self):
        page = self.make_registry().render_prometheus(
            now=100.0, windows=(4.0,))
        assert ":mean_4s" not in page


class TestClarityAggregator:
    def test_bottleneck_fraction_invariants(self, mono_run):
        _, _, aggregator = mono_run
        window = aggregator.bottleneck()
        assert window.jobs > 0
        assert window.attributable
        assert window.attributable_jobs == window.jobs
        for fractions in (window.fractions, window.machine_fractions):
            assert fractions
            assert all(f >= 0.0 for f in fractions.values())
            assert sum(fractions.values()) <= 1.0 + 1e-9
        label, fraction = window.dominant
        assert fraction == max(window.fractions.values())
        assert "bottleneck: " + label in window.format()

    @pytest.mark.parametrize("seed", [1, 2])
    def test_fraction_invariants_across_seeds(self, seed):
        workload = ClarityWorkload(duration_s=40.0, rate_per_s=0.05,
                                   sort_gb=0.25, sort_tasks=16, seed=seed)
        _, _, aggregator = run_clarity_serving(workload)
        window = aggregator.bottleneck()
        assert window.jobs > 0
        assert all(f >= 0.0 for f in window.fractions.values())
        assert sum(window.fractions.values()) <= 1.0 + 1e-9
        assert sum(window.machine_fractions.values()) <= 1.0 + 1e-9

    def test_spark_window_is_explicitly_not_attributable(self, spark_run):
        _, _, aggregator = spark_run
        window = aggregator.bottleneck()
        assert window.jobs > 0
        assert not window.attributable
        assert window.fractions == {}
        assert "NOT ATTRIBUTABLE" in window.format()
        assert "blended" in window.reason

    def test_empty_window(self):
        aggregator = ClarityAggregator()
        window = aggregator.bottleneck()
        assert window.jobs == 0
        assert not window.attributable
        assert "no jobs" in window.format()

    def test_window_filtering_drops_old_jobs(self, mono_run):
        _, _, aggregator = mono_run
        newest = max(job.end for job in aggregator.observations())
        assert aggregator.observations(now=newest + 1e6,
                                       window_s=1.0) == []
        tiny = aggregator.bottleneck(now=newest + 1e6, window_s=1.0)
        assert tiny.jobs == 0

    def test_max_jobs_bounds_retention(self, mono_run):
        ctx, _, aggregator = mono_run
        job_id = aggregator.observations()[0].job_id
        bounded = ClarityAggregator(max_jobs=2, engine="monospark")
        for _ in range(5):
            bounded.observe_job(ctx.metrics, job_id)
        assert bounded.total_observed == 2

    def test_observation_sums_match_duration(self, mono_run):
        _, _, aggregator = mono_run
        for job in aggregator.observations():
            assert sum(job.path_seconds.values()) == \
                pytest.approx(job.measured_s)
            assert sum(job.machine_seconds.values()) == \
                pytest.approx(job.measured_s)

    def test_validation(self):
        with pytest.raises(ClarityError):
            ClarityAggregator(window_s=0.0)
        with pytest.raises(ClarityError):
            ClarityAggregator(max_jobs=0)


class TestCapacityAdvisor:
    def test_advise_is_deterministic(self, mono_run):
        ctx, _, aggregator = mono_run
        advisor = CapacityAdvisor(hardware_profile(ctx.cluster))
        first = advisor.advise(aggregator.observations())
        second = advisor.advise(aggregator.observations())
        assert first.format() == second.format()

    def test_ranking_sorted_by_predicted_p95(self, mono_run):
        ctx, _, aggregator = mono_run
        advisor = CapacityAdvisor(hardware_profile(ctx.cluster))
        report = advisor.advise(aggregator.observations())
        assert report.attributable
        p95s = [rec.predicted_p95_s for rec in report.recommendations]
        assert p95s == sorted(p95s)
        assert report.top.name == report.recommendations[0].name
        assert 0.0 < report.top.model_coverage <= 1.0
        assert "recommend: " + report.top.name in report.format()

    def test_spark_observations_yield_not_attributable(self, spark_run):
        ctx, _, aggregator = spark_run
        advisor = CapacityAdvisor(hardware_profile(ctx.cluster))
        report = advisor.advise(aggregator.observations())
        assert not report.attributable
        assert report.top is None
        assert "NOT ATTRIBUTABLE" in report.format()
        assert "monotask profiles" in report.reason

    def test_default_candidates_adapt_to_hardware(self, mono_run):
        ctx, _, _ = mono_run
        hdd = hardware_profile(ctx.cluster)
        names = [c.name for c in default_candidates(hdd)]
        assert names.count("hdd-to-ssd") == 1
        assert "input-in-memory" in names
        assert len(set(names)) == len(names)
        ssd_names = [c.name for c in default_candidates(
            hardware_profile(ssd_cluster(num_machines=1, num_disks=1)))]
        assert "hdd-to-ssd" not in ssd_names
        assert "remove-machine" not in ssd_names
        no_soft = default_candidates(hdd, include_software=False)
        assert all(c.name != "input-in-memory" for c in no_soft)

    def test_advisor_validation(self, mono_run):
        ctx, _, _ = mono_run
        hardware = hardware_profile(ctx.cluster)
        with pytest.raises(ClarityError):
            CapacityAdvisor(hardware, candidates=[])
        dup = Candidate("x", WhatIf(hardware=hardware))
        with pytest.raises(ClarityError):
            CapacityAdvisor(hardware, candidates=[dup, dup])


class TestServeIntegration:
    def test_report_carries_clarity_window(self, mono_run):
        _, report, _ = mono_run
        assert report.clarity is not None
        text = report.format()
        assert "clarity window" in text
        assert "bottleneck:" in text

    def test_spark_report_carries_non_attributable_window(self, spark_run):
        _, report, _ = spark_run
        assert report.clarity is not None
        assert "NOT ATTRIBUTABLE" in report.format()


class TestValidationHarness:
    def test_build_cluster_overrides(self):
        workload = ClarityWorkload()
        base = hardware_profile(workload.build_cluster())
        more_disks = hardware_profile(workload.build_cluster(disks=3))
        assert more_disks.disks_per_machine == base.disks_per_machine + 1
        ssd = hardware_profile(workload.build_cluster(ssd=True))
        assert ssd.disk_throughput_bps == SSD.throughput_bps
        fast_net = hardware_profile(
            workload.build_cluster(network_bps=250.0 * MB))
        assert fast_net.network_bps == pytest.approx(250.0 * MB)

    def test_validate_rejects_blended_engine(self):
        with pytest.raises(ClarityError):
            validate_advisor(ClarityWorkload(engine="spark"))
