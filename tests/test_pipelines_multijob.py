"""Multi-job pipelines: saving results and reading them back."""

import pytest

from repro.api import AnalyticsContext
from repro.api.plan import DfsOutput
from repro.cluster import hdd_cluster
from repro.config import MB
from repro.datamodel import Partition
from repro.errors import ExecutionError

ENGINES = ["spark", "monospark"]


def dfs_ctx(engine, blocks=4):
    cluster = hdd_cluster(num_machines=2)
    payloads = [Partition.from_records([(i, i * 10)], record_count=1,
                                       data_bytes=16 * MB)
                for i in range(blocks)]
    cluster.dfs.create_file("input", payloads, [16 * MB] * blocks)
    return AnalyticsContext(cluster, engine=engine)


@pytest.mark.parametrize("engine", ENGINES)
class TestSaveAndReadBack:
    def test_round_trip_through_dfs(self, engine):
        ctx = dfs_ctx(engine)
        intermediate = ctx.text_file("input").map_values(lambda v: v + 1)
        plan = ctx.compile(intermediate,
                           DfsOutput(file_name="stage1", keep_payload=True),
                           name="stage1")
        ctx.engine.run_job(plan)
        # Second job reads the first job's output from the DFS.
        final = sorted(ctx.text_file("stage1").collect())
        assert final == [(i, i * 10 + 1) for i in range(4)]

    def test_saved_blocks_have_locality(self, engine):
        ctx = dfs_ctx(engine)
        plan = ctx.compile(ctx.text_file("input"),
                           DfsOutput(file_name="copy", keep_payload=True),
                           name="copy")
        ctx.engine.run_job(plan)
        for block in ctx.cluster.dfs.get_file("copy").blocks:
            assert len(block.replicas) == 1  # written locally

    def test_reading_payloadless_output_fails_clearly(self, engine):
        ctx = dfs_ctx(engine)
        # Default save does not keep payloads (timing-only output).
        ctx.text_file("input").save_as_text_file("opaque")
        with pytest.raises(ExecutionError, match="payload"):
            ctx.text_file("opaque").collect()

    def test_three_job_chain(self, engine):
        ctx = dfs_ctx(engine)
        plan1 = ctx.compile(
            ctx.text_file("input").map_values(lambda v: v * 2),
            DfsOutput(file_name="a", keep_payload=True), name="a")
        ctx.engine.run_job(plan1)
        plan2 = ctx.compile(
            ctx.text_file("a").filter(lambda kv: kv[1] >= 20),
            DfsOutput(file_name="b", keep_payload=True), name="b")
        ctx.engine.run_job(plan2)
        out = sorted(ctx.text_file("b").collect())
        assert out == [(1, 20), (2, 40), (3, 60)]
