"""Unit tests for the max-min fair network fabric."""

import pytest

from repro.config import MB
from repro.errors import SimulationError
from repro.simulator import Environment, Network
from repro.simulator.network import FLOW_LATENCY_S

BW = 100 * MB  # symmetric link bandwidth used in these tests


def make_network(env, machines=4, bw=BW):
    net = Network(env)
    for machine in range(machines):
        net.register_machine(machine, up_bps=bw, down_bps=bw)
    return net


def test_single_flow_uses_full_bandwidth():
    env = Environment()
    net = make_network(env)
    env.run(until=net.transfer(0, 1, 100 * MB))
    assert env.now == pytest.approx(1.0, rel=0.01)


def test_two_flows_share_receiver_link():
    env = Environment()
    net = make_network(env)
    done = env.all_of([
        net.transfer(0, 2, 100 * MB),
        net.transfer(1, 2, 100 * MB),
    ])
    env.run(until=done)
    # Both into machine 2: each gets 50 MB/s.
    assert env.now == pytest.approx(2.0, rel=0.01)


def test_two_flows_share_sender_link():
    env = Environment()
    net = make_network(env)
    done = env.all_of([
        net.transfer(0, 1, 100 * MB),
        net.transfer(0, 2, 100 * MB),
    ])
    env.run(until=done)
    assert env.now == pytest.approx(2.0, rel=0.01)


def test_disjoint_flows_do_not_contend():
    env = Environment()
    net = make_network(env)
    done = env.all_of([
        net.transfer(0, 1, 100 * MB),
        net.transfer(2, 3, 100 * MB),
    ])
    env.run(until=done)
    assert env.now == pytest.approx(1.0, rel=0.01)


def test_rates_rebalance_when_flow_finishes():
    env = Environment()
    net = make_network(env)
    finish = {}

    def run_flow(tag, nbytes):
        yield net.transfer(tag, 2, nbytes)
        finish[tag] = env.now

    env.process(run_flow(0, 50 * MB))
    env.process(run_flow(1, 100 * MB))
    env.run()
    # Shared 100 MB/s receiver: flow 0 (50 MB) finishes at t=1 while both
    # run at 50 MB/s; flow 1 then gets the full link for its last 50 MB.
    assert finish[0] == pytest.approx(1.0, rel=0.02)
    assert finish[1] == pytest.approx(1.5, rel=0.02)


def test_max_min_fairness_water_filling():
    env = Environment()
    net = make_network(env)
    # Flows: A 0->1, B 0->2, C 3->2.  Link 0-up shared by A,B; link 2-down
    # shared by B,C.  Max-min: A=50, B=50, C=50 at first; all symmetric.
    net.transfer(0, 1, 500 * MB, label="A")
    net.transfer(0, 2, 500 * MB, label="B")
    net.transfer(3, 2, 500 * MB, label="C")
    rates = net.rates_snapshot()
    assert rates["A"] == pytest.approx(50 * MB)
    assert rates["B"] == pytest.approx(50 * MB)
    assert rates["C"] == pytest.approx(50 * MB)


def test_asymmetric_water_filling():
    env = Environment()
    net = Network(env)
    net.register_machine(0, up_bps=100 * MB, down_bps=100 * MB)
    net.register_machine(1, up_bps=100 * MB, down_bps=30 * MB)
    net.register_machine(2, up_bps=100 * MB, down_bps=100 * MB)
    # B bottlenecked at machine 1's 30 MB/s downlink; A then gets the
    # remaining 70 MB/s of machine 0's uplink.
    net.transfer(0, 2, 500 * MB, label="A")
    net.transfer(0, 1, 500 * MB, label="B")
    rates = net.rates_snapshot()
    assert rates["B"] == pytest.approx(30 * MB)
    assert rates["A"] == pytest.approx(70 * MB)


def test_local_transfer_is_latency_only():
    env = Environment()
    net = make_network(env)
    env.run(until=net.transfer(1, 1, 1000 * MB))
    assert env.now == pytest.approx(FLOW_LATENCY_S)


def test_unregistered_machine_rejected():
    env = Environment()
    net = make_network(env, machines=2)
    with pytest.raises(SimulationError):
        net.transfer(0, 99, 10)


def test_duplicate_registration_rejected():
    env = Environment()
    net = make_network(env, machines=1)
    with pytest.raises(SimulationError):
        net.register_machine(0, BW, BW)


def test_bytes_accounting():
    env = Environment()
    net = make_network(env)
    env.run(until=net.transfer(0, 1, 42 * MB))
    assert net.bytes_transferred == 42 * MB


def test_many_flows_conserve_bandwidth():
    env = Environment()
    net = make_network(env, machines=8)
    flows = []
    for src in range(4):
        for dst in range(4, 8):
            flows.append(net.transfer(src, dst, 25 * MB))
    env.run(until=env.all_of(flows))
    # 16 flows, each sender uplink 100 MB/s shared by 4 flows -> 25 MB/s
    # each; total 400 MB moved through 400 MB/s of aggregate capacity.
    assert env.now == pytest.approx(1.0, rel=0.02)
