"""Unit tests for the locality-aware task pool."""

import pytest

from repro.api.plan import CollectOutput, LocalInput, TaskDescriptor
from repro.cluster import hdd_cluster
from repro.datamodel import Partition
from repro.engine.base import TaskPool
from repro.errors import ExecutionError


def make_pool(cluster, concurrency, policy="fifo", task_time=1.0):
    placements = []

    def run_task(task, machine):
        placements.append((task.task_id, machine.machine_id))
        yield cluster.env.timeout(task_time)

    pool = TaskPool(cluster.env, cluster.machines,
                    {m.machine_id: concurrency for m in cluster.machines},
                    run_task, policy=policy)
    return pool, placements


def descriptor(index, job=0, preferred=None):
    return TaskDescriptor(job_id=job, stage_id=0, index=index,
                          input=LocalInput(Partition.empty()), chain=[],
                          output=CollectOutput(),
                          preferred_machines=preferred or [])


class TestPlacement:
    def test_respects_locality(self):
        cluster = hdd_cluster(num_machines=3)
        pool, placements = make_pool(cluster, concurrency=2)
        for index, machine in enumerate([2, 0, 1]):
            pool.submit(descriptor(index, preferred=[machine]))
        cluster.env.run()
        assert [m for _, m in placements] == [2, 0, 1]

    def test_balances_unconstrained_tasks(self):
        cluster = hdd_cluster(num_machines=4)
        pool, placements = make_pool(cluster, concurrency=2)
        for index in range(8):
            pool.submit(descriptor(index))
        cluster.env.run()
        per_machine = {}
        for _, machine in placements:
            per_machine[machine] = per_machine.get(machine, 0) + 1
        assert set(per_machine.values()) == {2}

    def test_spills_to_remote_when_preferred_full(self):
        cluster = hdd_cluster(num_machines=2)
        pool, placements = make_pool(cluster, concurrency=1)
        for index in range(2):
            pool.submit(descriptor(index, preferred=[0]))
        cluster.env.run(until=0.5)
        # Machine 0 has one slot; the second task ran remotely at t=0.
        assert sorted(m for _, m in placements) == [0, 1]

    def test_queueing_when_all_slots_busy(self):
        cluster = hdd_cluster(num_machines=1)
        pool, placements = make_pool(cluster, concurrency=2)
        events = [pool.submit(descriptor(i)) for i in range(5)]
        cluster.env.run(until=cluster.env.all_of(events))
        # 5 tasks, 2 slots, 1 s each -> 3 waves.
        assert cluster.env.now == pytest.approx(3.0)

    def test_invalid_policy(self):
        cluster = hdd_cluster(num_machines=1)
        with pytest.raises(ExecutionError):
            make_pool(cluster, concurrency=1, policy="lottery")


class TestFairOrdering:
    def test_round_robin_across_jobs(self):
        cluster = hdd_cluster(num_machines=1)
        pool, placements = make_pool(cluster, concurrency=1, policy="fair")
        # Job 0 floods first, then job 1 arrives.
        for index in range(4):
            pool.submit(descriptor(index, job=0))
        for index in range(2):
            pool.submit(descriptor(index, job=1))
        cluster.env.run()
        order = [task_id.split("s")[0] for task_id, _ in placements]
        # After the first task, jobs alternate while both have work.
        assert "j1" in order[1:4]

    def test_fifo_keeps_submission_order(self):
        cluster = hdd_cluster(num_machines=1)
        pool, placements = make_pool(cluster, concurrency=1, policy="fifo")
        for index in range(3):
            pool.submit(descriptor(index, job=0))
        pool.submit(descriptor(0, job=1))
        cluster.env.run()
        assert [task_id for task_id, _ in placements] == [
            "j0s0t0", "j0s0t1", "j0s0t2", "j1s0t0"]
