"""Unit tests for the CPU pool and disk models."""

import pytest

from repro.config import HDD, MB, SSD, DiskSpec
from repro.errors import SimulationError
from repro.simulator import CpuPool, Disk, Environment


class TestCpuPool:
    def test_single_slice_takes_duration(self):
        env = Environment()
        pool = CpuPool(env, cores=4)
        env.run(until=pool.run(2.5))
        assert env.now == 2.5

    def test_parallelism_up_to_cores(self):
        env = Environment()
        pool = CpuPool(env, cores=2)
        done = env.all_of([pool.run(10.0) for _ in range(4)])
        env.run(until=done)
        # 4 slices of 10s on 2 cores: two waves.
        assert env.now == pytest.approx(20.0)

    def test_busy_time_tracked(self):
        env = Environment()
        pool = CpuPool(env, cores=2)
        env.run(until=env.all_of([pool.run(10.0) for _ in range(4)]))
        assert pool.tracker.busy_time() == pytest.approx(40.0)
        assert pool.tracker.utilization() == pytest.approx(1.0)
        assert pool.total_busy_s == pytest.approx(40.0)

    def test_fifo_admission(self):
        env = Environment()
        pool = CpuPool(env, cores=1)
        finishes = []
        for tag in range(3):
            pool.run(1.0).add_callback(
                lambda e, tag=tag: finishes.append((tag, env.now)))
        env.run()
        assert finishes == [(0, 1.0), (1, 2.0), (2, 3.0)]

    def test_zero_duration_slice(self):
        env = Environment()
        pool = CpuPool(env, cores=1)
        env.run(until=pool.run(0.0))
        assert env.now == 0.0

    def test_negative_duration_rejected(self):
        env = Environment()
        pool = CpuPool(env, cores=1)
        with pytest.raises(SimulationError):
            pool.run(-1.0)


class TestHddModel:
    def test_sequential_read_at_full_throughput(self):
        env = Environment()
        disk = Disk(env, HDD)
        nbytes = 100 * MB
        env.run(until=disk.read(nbytes))
        expected = HDD.seek_time_s + nbytes / HDD.throughput_bps
        assert env.now == pytest.approx(expected, rel=1e-6)
        assert disk.seeks == 1

    def test_two_concurrent_streams_pay_seeks(self):
        env = Environment()
        spec = DiskSpec(kind="hdd", throughput_bps=100 * MB,
                        seek_time_s=0.008, interleave_bytes=1 * MB)
        disk = Disk(env, spec)
        nbytes = 50 * MB
        done = env.all_of([disk.read(nbytes), disk.read(nbytes)])
        env.run(until=done)
        sequential = 2 * nbytes / spec.throughput_bps
        # Interleaving at 1 MB granularity costs a seek per chunk switch.
        chunks = 2 * nbytes / spec.interleave_bytes
        expected = sequential + chunks * spec.seek_time_s
        assert env.now == pytest.approx(expected, rel=0.01)
        # Effective throughput roughly halves vs. sequential access.
        assert env.now > 1.7 * sequential

    def test_one_stream_then_another_single_seek_each(self):
        env = Environment()
        disk = Disk(env, HDD)

        def proc():
            yield disk.read(10 * MB)
            yield disk.read(10 * MB)

        env.run(until=env.process(proc()))
        assert disk.seeks == 2

    def test_write_accounting(self):
        env = Environment()
        disk = Disk(env, HDD)
        env.run(until=disk.write(5 * MB))
        assert disk.bytes_written == 5 * MB
        assert disk.bytes_read == 0

    def test_zero_byte_request_completes_instantly(self):
        env = Environment()
        disk = Disk(env, HDD)
        env.run(until=disk.read(0))
        assert env.now == 0.0

    def test_invalid_kind_rejected(self):
        env = Environment()
        disk = Disk(env, HDD)
        with pytest.raises(SimulationError):
            disk.submit(10, "append")

    def test_utilization_tracked(self):
        env = Environment()
        disk = Disk(env, HDD)
        env.run(until=disk.read(100 * MB))
        busy_end = env.now
        env.timeout(busy_end)  # idle for as long again
        env.run()
        assert disk.tracker.utilization() == pytest.approx(0.5, abs=0.01)


class TestSsdModel:
    def test_single_stream_capped_below_device_rate(self):
        env = Environment()
        disk = Disk(env, SSD)
        nbytes = 45 * MB
        env.run(until=disk.read(nbytes))
        per_stream = SSD.throughput_bps / SSD.max_concurrency
        expected = nbytes / per_stream
        assert env.now == pytest.approx(expected, rel=0.02)

    def test_four_streams_reach_aggregate_rate(self):
        env = Environment()
        disk = Disk(env, SSD)
        nbytes = 45 * MB
        env.run(until=env.all_of([disk.read(nbytes) for _ in range(4)]))
        expected = 4 * nbytes / SSD.throughput_bps
        assert env.now == pytest.approx(expected, rel=0.02)

    def test_eight_streams_share_device_rate(self):
        env = Environment()
        disk = Disk(env, SSD)
        nbytes = 45 * MB
        env.run(until=env.all_of([disk.read(nbytes) for _ in range(8)]))
        expected = 8 * nbytes / SSD.throughput_bps
        assert env.now == pytest.approx(expected, rel=0.02)

    def test_staggered_streams_rebalance(self):
        env = Environment()
        spec = DiskSpec(kind="ssd", throughput_bps=400 * MB, seek_time_s=0.0,
                        max_concurrency=2)
        disk = Disk(env, spec)
        finish_times = {}

        def submit(tag, delay, nbytes):
            yield env.timeout(delay)
            yield disk.read(nbytes)
            finish_times[tag] = env.now

        # Stream A alone at 200 MB/s cap; B joins later, both still 200 MB/s.
        env.process(submit("a", 0.0, 200 * MB))
        env.process(submit("b", 0.5, 100 * MB))
        env.run()
        assert finish_times["a"] == pytest.approx(1.0, abs=0.02)
        assert finish_times["b"] == pytest.approx(1.0, abs=0.02)


class TestDiskHelpers:
    def test_time_to_serve(self):
        env = Environment()
        disk = Disk(env, HDD)
        assert disk.time_to_serve(100 * MB) == pytest.approx(
            HDD.seek_time_s + 100 * MB / HDD.throughput_bps)

    def test_queue_length(self):
        env = Environment()
        disk = Disk(env, HDD)
        disk.read(10 * MB)
        disk.read(10 * MB)
        assert disk.queue_length >= 2
        env.run()
        assert disk.queue_length == 0
