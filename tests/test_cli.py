"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import build_parser, main


ALL_COMMANDS = ("sort", "bdb", "ml", "wordcount", "whatif", "diagnose",
                "trace", "faults", "serve", "clarity", "health",
                "datasvc", "controlplane", "obs", "xray", "reproduce")


class TestParser:
    def test_all_subcommands_registered(self):
        parser = build_parser()
        for command in ("sort", "bdb", "ml", "wordcount", "whatif",
                        "diagnose", "trace"):
            args = parser.parse_args([command] if command != "bdb"
                                     else ["bdb", "--query", "1a"])
            assert args.command == command or command == "bdb"

    def test_top_level_help_lists_every_subcommand(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["--help"])
        assert excinfo.value.code == 0
        out = capsys.readouterr().out
        for command in ALL_COMMANDS:
            assert command in out

    @pytest.mark.parametrize("command", ALL_COMMANDS)
    def test_subcommand_help_exits_zero(self, command, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main([command, "--help"])
        assert excinfo.value.code == 0
        assert "usage:" in capsys.readouterr().out

    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_invalid_engine_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["sort", "--engine", "flink"])

    def test_clarity_actions_parse(self):
        parser = build_parser()
        for action in ("report", "watch", "advise"):
            args = parser.parse_args(["clarity", action])
            assert args.action == action
        assert parser.parse_args(["clarity"]).action == "report"

    def test_clarity_bad_action_and_flag_exit_two(self):
        with pytest.raises(SystemExit) as excinfo:
            main(["clarity", "bogus"])
        assert excinfo.value.code == 2
        with pytest.raises(SystemExit) as excinfo:
            main(["clarity", "report", "--bogus-flag"])
        assert excinfo.value.code == 2


class TestCommands:
    def test_sort(self, capsys):
        code = main(["sort", "--machines", "2", "--fraction", "0.01",
                     "--tasks", "32"])
        assert code == 0
        out = capsys.readouterr().out
        assert "sort (monospark)" in out
        assert "stage" in out

    def test_bdb(self, capsys):
        code = main(["bdb", "--query", "1a", "--fraction", "0.01",
                     "--machines", "2"])
        assert code == 0
        assert "BDB query 1a" in capsys.readouterr().out

    def test_ml(self, capsys):
        code = main(["ml", "--machines", "3", "--iterations", "1"])
        assert code == 0
        assert "iteration 0" in capsys.readouterr().out

    def test_wordcount(self, capsys):
        code = main(["wordcount", "--machines", "2", "--fraction", "0.01"])
        assert code == 0
        assert "word count" in capsys.readouterr().out

    def test_whatif(self, capsys):
        code = main(["whatif", "--machines", "2", "--fraction", "0.01",
                     "--tasks", "32", "--new-disks", "4"])
        assert code == 0
        out = capsys.readouterr().out
        assert "measured" in out
        assert "predicted" in out

    def test_diagnose_healthy_exits_zero(self, capsys):
        code = main(["diagnose", "--machines", "2", "--fraction", "0.01"])
        assert code == 0
        assert "slow disks: none" in capsys.readouterr().out

    def test_diagnose_degraded_exits_nonzero(self, capsys):
        code = main(["diagnose", "--machines", "4", "--fraction", "0.01",
                     "--degrade-machine", "1", "--disk-factor", "0.3"])
        assert code == 3
        assert "slow disks: [1]" in capsys.readouterr().out

    def test_serve(self, capsys):
        code = main(["serve", "--machines", "2", "--fraction", "0.01",
                     "--duration", "60", "--rate", "0.05",
                     "--batch-rate", "0.02", "--max-queued", "4"])
        assert code == 0
        out = capsys.readouterr().out
        assert "SLO report" in out
        assert "interactive" in out
        assert "Queueing attribution" in out

    def test_clarity_report(self, capsys):
        code = main(["clarity", "report", "--machines", "2",
                     "--duration", "40", "--rate", "0.05",
                     "--sort-gb", "0.25", "--tasks", "16"])
        assert code == 0
        out = capsys.readouterr().out
        assert "SLO report" in out
        assert "clarity window" in out
        assert "bottleneck:" in out

    def test_clarity_watch(self, capsys):
        code = main(["clarity", "watch", "--machines", "2",
                     "--duration", "40", "--rate", "0.05",
                     "--sort-gb", "0.25", "--tasks", "16",
                     "--interval", "20"])
        assert code == 0
        out = capsys.readouterr().out
        assert out.count("clarity window") >= 2
        assert "final clarity window" in out

    def test_clarity_advise(self, capsys):
        code = main(["clarity", "advise", "--machines", "2",
                     "--duration", "40", "--rate", "0.05",
                     "--sort-gb", "0.25", "--tasks", "16"])
        assert code == 0
        out = capsys.readouterr().out
        assert "capacity advisor" in out
        assert "recommend:" in out

    def test_clarity_advise_spark_exits_three(self, capsys):
        code = main(["clarity", "advise", "--engine", "spark",
                     "--machines", "2", "--duration", "40",
                     "--rate", "0.05", "--sort-gb", "0.25",
                     "--tasks", "16"])
        assert code == 3
        assert "NOT ATTRIBUTABLE" in capsys.readouterr().out

    def test_trace_writes_file(self, tmp_path, capsys):
        out_path = tmp_path / "trace.json"
        code = main(["trace", "--machines", "2", "--fraction", "0.01",
                     "--output", str(out_path), "--timeline"])
        assert code == 0
        data = json.loads(out_path.read_text())
        assert data["traceEvents"]
        assert "wrote" in capsys.readouterr().out
