"""Meta test: every public item in the library is documented.

Deliverable-level guarantee: public modules, classes, functions, and
methods all carry doc comments.
"""

import importlib
import inspect
import pkgutil

import pytest

import repro

EXEMPT_METHOD_NAMES = {
    # Self-explanatory dunder/protocol methods.
    "__init__", "__repr__", "__len__", "__post_init__",
}


def _public_modules():
    modules = []
    for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        if any(part.startswith("_") for part in info.name.split(".")):
            continue
        modules.append(importlib.import_module(info.name))
    return modules


def _owned_by(module, obj):
    return getattr(obj, "__module__", None) == module.__name__


class TestDocstrings:
    def test_every_module_has_a_docstring(self):
        undocumented = [module.__name__ for module in _public_modules()
                        if not inspect.getdoc(module)]
        assert not undocumented, f"undocumented modules: {undocumented}"

    def test_every_public_class_and_function_documented(self):
        undocumented = []
        for module in _public_modules():
            for name, obj in vars(module).items():
                if name.startswith("_") or not _owned_by(module, obj):
                    continue
                if inspect.isclass(obj) or inspect.isfunction(obj):
                    if not inspect.getdoc(obj):
                        undocumented.append(f"{module.__name__}.{name}")
        assert not undocumented, f"undocumented items: {undocumented}"

    def test_every_public_method_documented(self):
        undocumented = []
        for module in _public_modules():
            for cls_name, cls in vars(module).items():
                if (cls_name.startswith("_") or not inspect.isclass(cls)
                        or not _owned_by(module, cls)):
                    continue
                for name, member in vars(cls).items():
                    if name.startswith("_") and name not in ("__init__",):
                        continue
                    if name in EXEMPT_METHOD_NAMES:
                        continue
                    if isinstance(member, property):
                        member = member.fget
                    if not inspect.isfunction(member):
                        continue
                    if not inspect.getdoc(member):
                        undocumented.append(
                            f"{module.__name__}.{cls_name}.{name}")
        assert not undocumented, (
            f"{len(undocumented)} undocumented methods, e.g. "
            f"{undocumented[:15]}")
