"""Gray failures: network faults, online health monitoring, exclusion.

A gray-failed machine is slow, not dead: nothing times out and every
job still finishes, so detection has to come from *rates*, not
liveness.  These tests cover the new fault kinds (NetworkDegradation,
LinkPartition), the health monitor's detect/exclude/probation cycle,
the engines' exclusion-aware scheduling, and the determinism of all of
it -- same plan, same seed, byte-identical decisions.
"""

import dataclasses
import json
import os
import random

import pytest

from repro.api import AnalyticsContext
from repro.cluster import hdd_cluster
from repro.config import MB
from repro.datamodel import Partition
from repro.errors import PlanError
from repro.faults import (DiskFault, FaultInjector, FaultPlan, LinkPartition,
                          MachineCrash, NetworkDegradation, fail_slow_plan,
                          random_plan)
from repro.health import (EXCLUDED, HEALTHY, Blacklist, HealthMonitor,
                          HealthPolicy, PROBATION)
from repro.serve import wordcount_template
from repro.simulator.rng import RngStreams
from repro.workloads.scaling import scaled_memory_overrides

ENGINES = ["spark", "monospark"]

#: CI's fault-matrix job sets this to 0/1/2 so every scenario runs
#: under three distinct seeds; determinism tests compare runs *within*
#: one seed, so any offset must hold all assertions.
SEED_OFFSET = int(os.environ.get("REPRO_TEST_SEED", "0"))


# ---------------------------------------------------------------------------
# Workload helpers
# ---------------------------------------------------------------------------

def dfs_sort_cluster(machines=4, blocks=8, records_per_block=40,
                     seed=1 + SEED_OFFSET):
    cluster = hdd_cluster(num_machines=machines)
    rng = random.Random(seed)
    payloads = []
    for b in range(blocks):
        records = [(rng.randint(0, 999), f"v{b}")
                   for _ in range(records_per_block)]
        payloads.append(Partition.from_records(
            records, record_count=records_per_block, data_bytes=16 * MB))
    cluster.dfs.create_file("input", payloads, [16 * MB] * blocks)
    return cluster


def sort_records(ctx):
    return ctx.text_file("input").sort_by_key(num_partitions=4).collect()


def serving_ctx(engine, seed=42 + SEED_OFFSET):
    """A cluster plus a serving-sized word-count template (~6s jobs --
    long enough for the monitor's 5s ticks to observe them)."""
    cluster = hdd_cluster(num_machines=4, num_disks=2, seed=seed,
                          **scaled_memory_overrides(0.01))
    ctx = AnalyticsContext(cluster, engine=engine)
    template = wordcount_template(ctx, num_blocks=8, block_mb=32.0,
                                  seed=seed)
    return ctx, template


def run_jobs(ctx, template, count):
    env = ctx.engine.env
    durations = []
    for _ in range(count):
        driver = ctx.engine.submit_job(template.instantiate(ctx))
        start = env.now
        env.run(until=driver)
        durations.append(env.now - start)
    return durations


# ---------------------------------------------------------------------------
# Plan validation and sampling
# ---------------------------------------------------------------------------

class TestPlanValidation:
    def test_rejects_negative_machine_id(self):
        with pytest.raises(PlanError):
            FaultPlan([MachineCrash(at=1.0, machine_id=-1)])
        with pytest.raises(PlanError):
            FaultPlan([NetworkDegradation(at=1.0, machine_id=-2,
                                          down_factor=2.0)])

    def test_rejects_negative_disk_index(self):
        with pytest.raises(PlanError):
            FaultPlan([DiskFault(at=1.0, machine_id=0, disk_index=-1)])

    def test_rejects_speedup_degradation(self):
        # Factors are slowdowns: < 1 would be a speed-up.
        with pytest.raises(PlanError):
            FaultPlan([NetworkDegradation(at=1.0, machine_id=0,
                                          up_factor=0.5)])
        with pytest.raises(PlanError):
            FaultPlan([NetworkDegradation(at=1.0, machine_id=0,
                                          up_factor=2.0, duration=0.0)])

    def test_rejects_bad_partition(self):
        with pytest.raises(PlanError):
            FaultPlan([LinkPartition(at=1.0, src_machine_id=2,
                                     dst_machine_id=2)])
        with pytest.raises(PlanError):
            FaultPlan([LinkPartition(at=1.0, src_machine_id=-1,
                                     dst_machine_id=0)])
        with pytest.raises(PlanError):
            FaultPlan([LinkPartition(at=1.0, src_machine_id=0,
                                     dst_machine_id=1, heal_after=-2.0)])

    def test_fail_slow_plan_shape(self):
        plan = fail_slow_plan(machine_id=2, at=7.0, factor=4.0)
        (fault,) = list(plan)
        assert isinstance(fault, NetworkDegradation)
        assert fault.machine_id == 2 and fault.at == 7.0
        assert fault.up_factor == 4.0 and fault.down_factor == 4.0
        assert fault.duration is None  # gray failures do not self-heal


class TestRandomPlanKinds:
    WEIGHTS = {"crash": 1.0, "disk": 1.0, "slowdown": 1.0,
               "degradation": 1.0, "partition": 1.0}

    def test_default_is_all_crashes(self):
        plan = random_plan(RngStreams(3), range(4), horizon_s=50.0,
                           num_faults=5)
        assert all(isinstance(f, MachineCrash) for f in plan)

    def test_kind_weights_sample_mixed_kinds(self):
        plan = random_plan(RngStreams(11), range(8), horizon_s=200.0,
                           num_faults=40, kind_weights=self.WEIGHTS,
                           num_disks=2)
        kinds = {type(f) for f in plan}
        assert len(kinds) >= 4  # 40 draws over 5 kinds: mixing happened
        assert any(isinstance(f, (NetworkDegradation, LinkPartition))
                   for f in plan)

    def test_kind_weights_deterministic(self):
        def draw():
            return list(random_plan(RngStreams(5), range(6),
                                    horizon_s=100.0, num_faults=12,
                                    kind_weights=self.WEIGHTS,
                                    num_disks=2))
        assert draw() == draw()
        other = list(random_plan(RngStreams(6), range(6), horizon_s=100.0,
                                 num_faults=12, kind_weights=self.WEIGHTS,
                                 num_disks=2))
        assert draw() != other

    def test_rejects_unknown_kind_and_empty_weights(self):
        with pytest.raises(PlanError):
            random_plan(RngStreams(0), range(4), horizon_s=10.0,
                        kind_weights={"meteor": 1.0})
        with pytest.raises(PlanError):
            random_plan(RngStreams(0), range(4), horizon_s=10.0,
                        kind_weights={"crash": 0.0})

    def test_partition_needs_two_machines(self):
        with pytest.raises(PlanError):
            random_plan(RngStreams(0), [3], horizon_s=10.0,
                        kind_weights={"partition": 1.0})


# ---------------------------------------------------------------------------
# Injector behavior
# ---------------------------------------------------------------------------

class TestInjectorSkipsDeadTargets:
    def test_gray_faults_on_crashed_machine_are_skipped(self):
        # Regression: degrading a corpse used to be possible; now the
        # injector skips and records instead.
        ctx = AnalyticsContext(dfs_sort_cluster(), engine="monospark")
        plan = FaultPlan([
            MachineCrash(at=0.5, machine_id=1),
            NetworkDegradation(at=1.0, machine_id=1, up_factor=4.0),
            DiskFault(at=1.5, machine_id=1, disk_index=0),
        ])
        FaultInjector(ctx.engine, plan).start()
        sort_records(ctx)
        kinds = {(f.kind, f.detail) for f in ctx.metrics.faults}
        assert ("net-degradation-skipped", "target down") in kinds
        assert ("disk-failure-skipped", "target down") in kinds
        assert not any(f.kind == "net-degradation" for f in
                       ctx.metrics.faults)


# ---------------------------------------------------------------------------
# Partition fail-fast: jobs never hang
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("engine", ENGINES)
class TestLinkPartition:
    def test_permanent_partition_job_completes(self, engine):
        expected = sorted(sort_records(
            AnalyticsContext(dfs_sort_cluster(), engine=engine)))
        baseline = AnalyticsContext(dfs_sort_cluster(), engine=engine)
        sort_records(baseline)
        duration = baseline.last_result.duration

        ctx = AnalyticsContext(dfs_sort_cluster(), engine=engine)
        # Block the 2 -> 0 direction mid-run, forever.  Fetches of
        # machine 2's map output by reducers on machine 0 fail fast;
        # the retry avoids the victim destination and runs elsewhere.
        plan = FaultPlan([LinkPartition(at=duration * 0.4,
                                        src_machine_id=2,
                                        dst_machine_id=0)])
        FaultInjector(ctx.engine, plan).start()
        records = sort_records(ctx)
        assert sorted(records) == expected
        env = ctx.cluster.env
        env.run()
        assert env.queue_size == 0  # fail-fast, not a hang

    def test_healed_partition_job_completes(self, engine):
        expected = sorted(sort_records(
            AnalyticsContext(dfs_sort_cluster(), engine=engine)))
        baseline = AnalyticsContext(dfs_sort_cluster(), engine=engine)
        sort_records(baseline)
        duration = baseline.last_result.duration

        ctx = AnalyticsContext(dfs_sort_cluster(), engine=engine)
        plan = FaultPlan([LinkPartition(at=duration * 0.4,
                                        src_machine_id=2,
                                        dst_machine_id=0,
                                        heal_after=duration)])
        FaultInjector(ctx.engine, plan).start()
        records = sort_records(ctx)
        assert sorted(records) == expected
        kinds = [f.kind for f in ctx.metrics.faults]
        assert "link-partition" in kinds
        env = ctx.cluster.env
        env.run()
        assert env.queue_size == 0
        assert "link-heal" in [f.kind for f in ctx.metrics.faults]


# ---------------------------------------------------------------------------
# Differential: both engines under the same mixed plan
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("engine", ENGINES)
class TestMixedPlanRecovery:
    def mixed_plan(self, duration):
        return FaultPlan([
            NetworkDegradation(at=duration * 0.1, machine_id=2,
                               up_factor=3.0, down_factor=3.0,
                               duration=duration),
            LinkPartition(at=duration * 0.3, src_machine_id=3,
                          dst_machine_id=0, heal_after=duration * 0.5),
            MachineCrash(at=duration * 0.5, machine_id=1,
                         restart_after=duration * 0.5),
        ])

    def test_mixed_plan_same_answer(self, engine):
        expected = sorted(sort_records(
            AnalyticsContext(dfs_sort_cluster(), engine=engine)))
        baseline = AnalyticsContext(dfs_sort_cluster(), engine=engine)
        sort_records(baseline)
        duration = baseline.last_result.duration

        ctx = AnalyticsContext(dfs_sort_cluster(), engine=engine)
        FaultInjector(ctx.engine, self.mixed_plan(duration)).start()
        records = sort_records(ctx)
        assert sorted(records) == expected
        env = ctx.cluster.env
        env.run()
        assert env.queue_size == 0


def test_engines_agree_under_mixed_plan():
    # The same mixed crash+partition+degradation plan must leave both
    # engines with the exact same collected output.
    results = {}
    for engine in ENGINES:
        baseline = AnalyticsContext(dfs_sort_cluster(), engine=engine)
        sort_records(baseline)
        duration = baseline.last_result.duration
        ctx = AnalyticsContext(dfs_sort_cluster(), engine=engine)
        plan = FaultPlan([
            NetworkDegradation(at=duration * 0.2, machine_id=2,
                               up_factor=4.0, down_factor=4.0),
            LinkPartition(at=duration * 0.3, src_machine_id=3,
                          dst_machine_id=0, heal_after=duration),
            MachineCrash(at=duration * 0.5, machine_id=1,
                         restart_after=duration * 0.4),
        ])
        FaultInjector(ctx.engine, plan).start()
        results[engine] = sorted(sort_records(ctx))
    assert results["spark"] == results["monospark"]


# ---------------------------------------------------------------------------
# Blacklist state machine
# ---------------------------------------------------------------------------

class TestBlacklist:
    POLICY = HealthPolicy(interval_s=5.0, suspicion_threshold=2,
                          probation_after_s=30.0, probation_ticks=2)

    def test_exclude_after_threshold_strikes(self):
        blacklist = Blacklist(self.POLICY)
        assert blacklist.observe(0, suspect=True, fresh=True,
                                 now=5.0) == ["suspect"]
        assert blacklist.state(0) == HEALTHY
        assert blacklist.observe(0, suspect=True, fresh=True,
                                 now=10.0) == ["exclude"]
        assert blacklist.state(0) == EXCLUDED

    def test_budget_blocks_exclusion(self):
        blacklist = Blacklist(self.POLICY)
        blacklist.observe(0, suspect=True, fresh=True, now=5.0)
        actions = blacklist.observe(0, suspect=True, fresh=True, now=10.0,
                                    can_exclude=False)
        assert "exclude" not in actions
        assert blacklist.state(0) == HEALTHY

    def test_probation_then_reinstate(self):
        blacklist = Blacklist(self.POLICY)
        blacklist.observe(0, suspect=True, fresh=True, now=5.0)
        blacklist.observe(0, suspect=True, fresh=True, now=10.0)
        # Before probation_after_s nothing changes.
        assert blacklist.observe(0, suspect=False, fresh=False,
                                 now=20.0) == []
        assert blacklist.observe(0, suspect=False, fresh=False,
                                 now=40.0) == ["probation"]
        assert blacklist.state(0) == PROBATION
        # Probation verdicts need fresh probe observations.
        assert blacklist.observe(0, suspect=False, fresh=False,
                                 now=45.0) == []
        assert blacklist.observe(0, suspect=False, fresh=True,
                                 now=50.0) == []
        assert blacklist.observe(0, suspect=False, fresh=True,
                                 now=55.0) == ["reinstate"]
        assert blacklist.state(0) == HEALTHY

    def test_probation_relapse_re_excludes(self):
        blacklist = Blacklist(self.POLICY)
        blacklist.observe(0, suspect=True, fresh=True, now=5.0)
        blacklist.observe(0, suspect=True, fresh=True, now=10.0)
        blacklist.observe(0, suspect=False, fresh=False, now=40.0)
        assert blacklist.state(0) == PROBATION
        assert blacklist.observe(0, suspect=True, fresh=True,
                                 now=45.0) == ["exclude"]
        assert blacklist.state(0) == EXCLUDED


# ---------------------------------------------------------------------------
# Online detection and exclusion, end to end
# ---------------------------------------------------------------------------

class TestHealthMonitor:
    def test_monospark_excludes_degraded_machine(self):
        ctx, template = serving_ctx("monospark")
        FaultInjector(ctx.engine,
                      fail_slow_plan(machine_id=1, at=5.0,
                                     factor=10.0)).start()
        monitor = HealthMonitor(ctx.engine, HealthPolicy())
        monitor.start()
        durations = run_jobs(ctx, template, 8)
        monitor.stop()
        ctx.engine.env.run()

        excludes = ctx.metrics.health_records(kind="exclude")
        assert excludes and excludes[0].machine_id == 1
        assert excludes[0].resource == "network"
        assert 1 in ctx.engine.excluded_machines
        # Latency recovers once the sick machine is out of the way.
        assert durations[-1] < max(durations) - 0.5

    def test_no_attempts_placed_on_excluded_machine(self):
        ctx, template = serving_ctx("monospark")
        FaultInjector(ctx.engine,
                      fail_slow_plan(machine_id=1, at=5.0,
                                     factor=10.0)).start()
        monitor = HealthMonitor(ctx.engine, HealthPolicy())
        monitor.start()
        run_jobs(ctx, template, 8)
        monitor.stop()
        ctx.engine.env.run()

        excludes = ctx.metrics.health_records(kind="exclude", machine_id=1)
        assert excludes
        excluded_at = excludes[0].at
        probations = ctx.metrics.health_records(kind="probation",
                                                machine_id=1)
        window_end = (probations[0].at if probations
                      else ctx.engine.env.now)
        late = [a for a in ctx.metrics.attempts
                if a.machine_id == 1 and a.start > excluded_at
                and a.start < window_end]
        assert late == []

    def test_spark_cannot_attribute_fail_slow_network(self):
        # The contrast: the sick uplink slows *every* machine's tasks,
        # so the blended task rate never isolates a suspect.
        ctx, template = serving_ctx("spark")
        FaultInjector(ctx.engine,
                      fail_slow_plan(machine_id=1, at=5.0,
                                     factor=10.0)).start()
        monitor = HealthMonitor(ctx.engine, HealthPolicy())
        monitor.start()
        run_jobs(ctx, template, 8)
        monitor.stop()
        ctx.engine.env.run()

        assert ctx.metrics.health_records(kind="exclude") == []
        assert not ctx.engine.excluded_machines

    def test_healed_degradation_leads_to_reinstatement(self):
        ctx, template = serving_ctx("monospark")
        plan = FaultPlan([NetworkDegradation(at=5.0, machine_id=1,
                                             up_factor=10.0,
                                             down_factor=10.0,
                                             duration=40.0)])
        FaultInjector(ctx.engine, plan).start()
        monitor = HealthMonitor(ctx.engine, HealthPolicy())
        monitor.start()
        run_jobs(ctx, template, 14)
        monitor.stop()
        ctx.engine.env.run()

        kinds = [h.kind for h in ctx.metrics.health_events
                 if h.machine_id == 1]
        assert "exclude" in kinds
        assert "reinstate" in kinds
        assert kinds.index("exclude") < kinds.index("reinstate")
        assert 1 not in ctx.engine.excluded_machines

    def test_exclusion_decisions_byte_identical(self):
        def trace():
            ctx, template = serving_ctx("monospark")
            FaultInjector(ctx.engine,
                          fail_slow_plan(machine_id=1, at=5.0,
                                         factor=10.0)).start()
            monitor = HealthMonitor(ctx.engine, HealthPolicy())
            monitor.start()
            run_jobs(ctx, template, 10)
            monitor.stop()
            ctx.engine.env.run()
            return json.dumps({
                "health": [dataclasses.astuple(h)
                           for h in ctx.metrics.health_events],
                "transfers": [dataclasses.astuple(t)
                              for t in ctx.metrics.transfers],
                "attempts": [dataclasses.astuple(a)
                             for a in ctx.metrics.attempts],
            })

        first = trace()
        second = trace()
        assert first == second
        assert "exclude" in first
