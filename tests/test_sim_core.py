"""Unit tests for the discrete-event kernel."""

import pytest

from repro.errors import EmptySchedule, Interrupted, SimulationError
from repro.simulator import Environment


def test_clock_starts_at_zero():
    env = Environment()
    assert env.now == 0.0


def test_timeout_advances_clock():
    env = Environment()
    done = env.timeout(5.0, value="x")
    result = env.run(until=done)
    assert result == "x"
    assert env.now == 5.0


def test_events_fire_in_time_order():
    env = Environment()
    order = []
    for delay in (3.0, 1.0, 2.0):
        env.timeout(delay, value=delay).add_callback(
            lambda e: order.append(e.value))
    env.run()
    assert order == [1.0, 2.0, 3.0]


def test_same_time_events_fire_in_schedule_order():
    env = Environment()
    order = []
    for tag in range(5):
        env.timeout(1.0, value=tag).add_callback(
            lambda e: order.append(e.value))
    env.run()
    assert order == [0, 1, 2, 3, 4]


def test_process_returns_value():
    env = Environment()

    def proc():
        yield env.timeout(2.0)
        return 42

    result = env.run(until=env.process(proc()))
    assert result == 42
    assert env.now == 2.0


def test_process_receives_event_values():
    env = Environment()

    def proc():
        value = yield env.timeout(1.0, value="hello")
        return value

    assert env.run(until=env.process(proc())) == "hello"


def test_nested_processes():
    env = Environment()

    def inner(duration):
        yield env.timeout(duration)
        return duration * 10

    def outer():
        a = yield env.process(inner(1.0))
        b = yield env.process(inner(2.0))
        return a + b

    assert env.run(until=env.process(outer())) == 30.0
    assert env.now == 3.0


def test_failed_event_raises_in_process():
    env = Environment()

    def proc():
        event = env.event()
        env.timeout(1.0).add_callback(
            lambda _: event.fail(ValueError("boom")))
        with pytest.raises(ValueError, match="boom"):
            yield event
        return "recovered"

    assert env.run(until=env.process(proc())) == "recovered"


def test_unhandled_process_failure_propagates_to_run():
    env = Environment()

    def proc():
        yield env.timeout(1.0)
        raise RuntimeError("task exploded")

    env.process(proc())
    with pytest.raises(RuntimeError, match="task exploded"):
        env.run()


def test_run_until_event_propagates_failure():
    env = Environment()

    def proc():
        yield env.timeout(1.0)
        raise RuntimeError("bad")

    with pytest.raises(RuntimeError, match="bad"):
        env.run(until=env.process(proc()))


def test_run_until_numeric_deadline():
    env = Environment()
    fired = []
    env.timeout(1.0).add_callback(lambda _: fired.append(1))
    env.timeout(10.0).add_callback(lambda _: fired.append(10))
    env.run(until=5.0)
    assert fired == [1]
    assert env.now == 5.0


def test_run_until_past_deadline_rejected():
    env = Environment()
    env.run(until=5.0)
    with pytest.raises(SimulationError):
        env.run(until=1.0)


def test_step_on_empty_schedule_raises():
    env = Environment()
    with pytest.raises(EmptySchedule):
        env.step()


def test_negative_timeout_rejected():
    env = Environment()
    with pytest.raises(SimulationError):
        env.timeout(-1.0)


def test_event_cannot_trigger_twice():
    env = Environment()
    event = env.event()
    event.succeed(1)
    with pytest.raises(SimulationError):
        event.succeed(2)


def test_all_of_waits_for_every_event():
    env = Environment()

    def proc():
        values = yield env.all_of(
            [env.timeout(1.0, "a"), env.timeout(3.0, "b"),
             env.timeout(2.0, "c")])
        return values

    assert env.run(until=env.process(proc())) == ["a", "b", "c"]
    assert env.now == 3.0


def test_all_of_empty_list_fires_immediately():
    env = Environment()

    def proc():
        values = yield env.all_of([])
        return values

    assert env.run(until=env.process(proc())) == []


def test_any_of_fires_on_first():
    env = Environment()

    def proc():
        value = yield env.any_of(
            [env.timeout(5.0, "slow"), env.timeout(1.0, "fast")])
        return value

    assert env.run(until=env.process(proc())) == "fast"
    assert env.now == 1.0


def test_yielding_non_event_fails_the_process():
    env = Environment()

    def proc():
        yield 42

    env.process(proc())
    with pytest.raises(SimulationError, match="non-event"):
        env.run()


def test_waiting_on_already_processed_event():
    env = Environment()
    early = env.timeout(1.0, value="early")

    def proc():
        yield env.timeout(5.0)
        value = yield early  # already fired at t=1
        return (value, env.now)

    assert env.run(until=env.process(proc())) == ("early", 5.0)


def test_interrupt_wakes_process_early():
    env = Environment()
    log = []

    def victim():
        try:
            yield env.timeout(100.0)
        except Interrupted as exc:
            log.append((env.now, exc.cause))
        yield env.timeout(1.0)
        return "done"

    proc = env.process(victim())

    def attacker():
        yield env.timeout(2.0)
        proc.interrupt(cause="preempted")

    env.process(attacker())
    assert env.run(until=proc) == "done"
    assert log == [(2.0, "preempted")]
    assert env.now == 3.0


def test_interrupting_completed_process_rejected():
    env = Environment()

    def quick():
        yield env.timeout(1.0)

    proc = env.process(quick())
    env.run()
    with pytest.raises(SimulationError):
        proc.interrupt()


def test_peek_reports_next_event_time():
    env = Environment()
    assert env.peek() == float("inf")
    env.timeout(7.0)
    assert env.peek() == 7.0
