"""Smoke tests: the runnable examples actually run.

Only the fast examples run here (the sweep-style ones take minutes and
are exercised by the benchmarks instead).
"""

import runpy
import sys

import pytest


def run_example(name, capsys):
    runpy.run_module(f"examples.{name}", run_name="__main__")
    return capsys.readouterr().out


@pytest.fixture(autouse=True)
def examples_on_path(monkeypatch):
    monkeypatch.syspath_prepend(".")


class TestExamples:
    def test_quickstart(self, capsys):
        out = run_example("quickstart", capsys)
        assert "monospark" in out
        assert "Monotask self-reports" in out

    def test_ml_pipeline(self, capsys):
        out = run_example("ml_pipeline", capsys)
        assert "iterations" in out
        assert "0 disk bytes" in out

    def test_bottleneck_debugging(self, capsys):
        out = run_example("bottleneck_debugging", capsys)
        assert "bottleneck = cpu" in out
        assert "execution timeline" in out

    def test_fault_recovery(self, capsys):
        out = run_example("fault_recovery", capsys)
        assert "fault-free run" in out
        assert "machine-crash" in out
        assert "lineage" in out

    def test_data_service(self, capsys):
        out = run_example("data_service", capsys)
        assert "disaggregated shuffle" in out
        assert "zero lineage losses" in out
        assert "integrity suspicions" in out
        assert "same answer, same bytes" in out

    def test_driver_failover(self, capsys):
        out = run_example("driver_failover", capsys)
        assert "won the election" in out
        assert "in-flight job(s) resumed" in out
        assert "0 lost" in out
        assert "lost requests into zero" in out

    def test_clarity_pipeline(self, capsys):
        out = run_example("clarity_pipeline", capsys)
        assert "bottleneck: disk" in out
        assert "recommend: " in out
        assert "NOT ATTRIBUTABLE" in out

    def test_gray_failure(self, capsys):
        out = run_example("gray_failure", capsys)
        assert "exclude" in out
        assert "network" in out
        assert "excluded at end: [1]" in out
        assert "cannot find the sick machine" in out

    def test_alerting(self, capsys):
        out = run_example("alerting", capsys)
        assert "slo-burn{tenant=analytics}" in out
        assert "source-slow{machine=1}" in out
        assert "the alert led the exclusion by" in out
        assert "the exemplar resolves to a real span" in out
        assert "0 outside the envelope" in out
        assert "CRITICAL alert/firing" in out
        assert "WARNING  fault/net-degradation machine 1" in out

    def test_serving(self, capsys):
        out = run_example("serving", capsys)
        assert "SLO report (spark" in out
        assert "SLO report (monospark" in out
        assert "Queueing attribution (monotask queue seconds)" in out

    def test_run_diff(self, capsys, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_TRACE_DIR", str(tmp_path))
        out = run_example("run_diff", capsys)
        assert "why is B slower than A?" in out
        assert "#1 network" in out
        assert "machine 1" in out
        assert "NOT ATTRIBUTABLE" in out
        assert (tmp_path / "run-diff-clean.capsule").exists()
        assert (tmp_path / "run-diff-degraded.capsule").exists()

    def test_tracing(self, capsys, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_TRACE_DIR", str(tmp_path))
        out = run_example("tracing", capsys)
        assert "critical path: job 0" in out
        assert "dominant:" in out
        assert "NOT ATTRIBUTABLE" in out
        assert "# TYPE repro_resource_queue_depth gauge" in out
        assert (tmp_path / "tracing-monospark.json").exists()
        assert (tmp_path / "tracing-spark-spans.jsonl").exists()
