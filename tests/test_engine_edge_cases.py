"""Edge cases and failure handling across the execution stack."""

import pytest

from repro.api import AnalyticsContext
from repro.cluster import hdd_cluster
from repro.config import MB
from repro.datamodel import Partition
from repro.errors import ConfigError, ExecutionError

ENGINES = ["spark", "monospark"]


@pytest.mark.parametrize("engine", ENGINES)
class TestEdgeCases:
    def test_single_record_job(self, engine):
        ctx = AnalyticsContext(hdd_cluster(num_machines=1), engine=engine)
        assert ctx.parallelize([42], num_partitions=1).collect() == [42]

    def test_more_partitions_than_records(self, engine):
        ctx = AnalyticsContext(hdd_cluster(num_machines=1), engine=engine)
        out = ctx.parallelize([1, 2], num_partitions=8).collect()
        assert sorted(out) == [1, 2]

    def test_empty_partitions_through_shuffle(self, engine):
        ctx = AnalyticsContext(hdd_cluster(num_machines=1), engine=engine)
        out = (ctx.parallelize([("k", 1)], num_partitions=4)
               .reduce_by_key(lambda a, b: a + b, num_partitions=4)
               .collect())
        assert out == [("k", 1)]

    def test_skewed_keys_single_reducer_bucket(self, engine):
        ctx = AnalyticsContext(hdd_cluster(num_machines=2), engine=engine)
        pairs = [("hot", 1)] * 100
        out = (ctx.parallelize(pairs, num_partitions=4)
               .reduce_by_key(lambda a, b: a + b, num_partitions=8)
               .collect())
        assert out == [("hot", 100)]

    def test_task_exception_propagates(self, engine):
        ctx = AnalyticsContext(hdd_cluster(num_machines=1), engine=engine)
        rdd = ctx.parallelize([1, 0], num_partitions=1).map(
            lambda x: 1 // x)
        with pytest.raises(ZeroDivisionError):
            rdd.collect()

    def test_zero_byte_dfs_block(self, engine):
        cluster = hdd_cluster(num_machines=1)
        cluster.dfs.create_file(
            "empty", [Partition.empty(), Partition.empty()], [0.0, 0.0])
        ctx = AnalyticsContext(cluster, engine=engine)
        assert ctx.text_file("empty").collect() == []

    def test_job_after_failed_job(self, engine):
        ctx = AnalyticsContext(hdd_cluster(num_machines=1), engine=engine)
        bad = ctx.parallelize([0], num_partitions=1).map(lambda x: 1 // x)
        with pytest.raises(ZeroDivisionError):
            bad.collect()
        # The context must remain usable.
        assert ctx.parallelize([5], num_partitions=1).collect() == [5]


class TestConfigValidation:
    def test_unknown_engine(self):
        with pytest.raises(ConfigError):
            AnalyticsContext(hdd_cluster(num_machines=1), engine="flink")

    def test_engine_instance_with_options_rejected(self):
        from repro.spark.engine import SparkEngine
        cluster = hdd_cluster(num_machines=1)
        engine = SparkEngine(cluster)
        with pytest.raises(ConfigError):
            AnalyticsContext(cluster, engine=engine, flush_writes=True)

    def test_invalid_spark_options(self):
        from repro.spark.engine import SparkEngine
        with pytest.raises(ConfigError):
            SparkEngine(hdd_cluster(num_machines=1), slots_per_machine=0)
        with pytest.raises(ConfigError):
            SparkEngine(hdd_cluster(num_machines=1), chunk_bytes=0)

    def test_invalid_mono_options(self):
        from repro.monospark.engine import MonoSparkEngine
        with pytest.raises(ConfigError):
            MonoSparkEngine(hdd_cluster(num_machines=1), network_limit=0)
        with pytest.raises(ConfigError):
            MonoSparkEngine(hdd_cluster(num_machines=1), ssd_outstanding=0)
        with pytest.raises(ConfigError):
            MonoSparkEngine(hdd_cluster(num_machines=1),
                            extra_multitasks=-1)

    def test_parallelize_invalid_partitions(self):
        ctx = AnalyticsContext(hdd_cluster(num_machines=1))
        with pytest.raises(ConfigError):
            ctx.parallelize([1], num_partitions=0)


class TestRemoteReads:
    @pytest.mark.parametrize("engine", ENGINES)
    def test_non_local_task_reads_over_network(self, engine):
        # Pin every block's sole replica to machine 0: the other three
        # machines' slots must fetch their blocks remotely.
        cluster = hdd_cluster(num_machines=4, replication=1)
        n = 24  # more blocks than machine 0 has execution slots
        payloads = [Partition.from_records([(i, i)], record_count=1,
                                           data_bytes=32 * MB)
                    for i in range(n)]
        dfs_file = cluster.dfs.create_file("input", payloads, [32 * MB] * n)
        for block in dfs_file.blocks:
            block.replicas = [(0, 0)]
        ctx = AnalyticsContext(cluster, engine=engine)
        out = ctx.text_file("input").collect()
        assert len(out) == n
        assert cluster.network.bytes_transferred > 0
        # Remote reads hit machine 0's disk, not the reader's.
        assert cluster.machine(0).disks[0].bytes_read > 0
