"""Integration tests: data formats through full jobs."""

import pytest

from repro.api import AnalyticsContext
from repro.cluster import hdd_cluster
from repro.config import MB
from repro.datamodel import COMPRESSED, DESERIALIZED, PLAIN, DataFormat, Partition

ENGINES = ["spark", "monospark"]


def dfs_ctx(engine, fmt, blocks=6, block_mb=48):
    cluster = hdd_cluster(num_machines=2)
    logical = block_mb * MB
    stored = fmt.stored_bytes(logical)
    payloads = [Partition.from_records([(i, i)], record_count=1,
                                       data_bytes=logical)
                for i in range(blocks)]
    cluster.dfs.create_file("input", payloads, [stored] * blocks)
    return AnalyticsContext(cluster, engine=engine), fmt


@pytest.mark.parametrize("engine", ENGINES)
class TestCompressedInput:
    def test_compressed_reads_fewer_bytes(self, engine):
        ctx_plain, _ = dfs_ctx(engine, PLAIN)
        ctx_plain.text_file("input", fmt=PLAIN).count()
        plain_read = sum(d.bytes_read
                         for m in ctx_plain.cluster.machines
                         for d in m.disks)

        ctx_comp, _ = dfs_ctx(engine, COMPRESSED)
        ctx_comp.text_file("input", fmt=COMPRESSED).count()
        comp_read = sum(d.bytes_read
                        for m in ctx_comp.cluster.machines
                        for d in m.disks)
        assert comp_read == pytest.approx(plain_read / 2, rel=0.01)

    def test_compression_tradeoff_visible_in_runtime(self, engine):
        """Compressed: less disk, more CPU -- the paper's 'should I store
        compressed or uncompressed data?' question is answerable."""
        ctx_plain, _ = dfs_ctx(engine, PLAIN, blocks=8, block_mb=96)
        ctx_plain.text_file("input", fmt=PLAIN).count()
        plain_s = ctx_plain.last_result.duration

        ctx_comp, _ = dfs_ctx(engine, COMPRESSED, blocks=8, block_mb=96)
        ctx_comp.text_file("input", fmt=COMPRESSED).count()
        comp_s = ctx_comp.last_result.duration
        # This scan is disk-bound on 2 machines: compression wins.
        assert comp_s < plain_s

    def test_compressed_output(self, engine):
        ctx, _ = dfs_ctx(engine, PLAIN, blocks=4)
        ctx.text_file("input").save_as_text_file("out", fmt=COMPRESSED)
        out = ctx.cluster.dfs.get_file("out")
        assert out.nbytes == pytest.approx(4 * 48 * MB / 2, rel=0.01)


@pytest.mark.parametrize("engine", ENGINES)
class TestCacheFormats:
    def test_deserialized_cache_faster_than_disk(self, engine):
        ctx, _ = dfs_ctx(engine, PLAIN, blocks=6, block_mb=96)
        rdd = ctx.text_file("input")
        rdd.cache(fmt=DESERIALIZED)
        rdd.count()
        cold = ctx.last_result.duration
        rdd.count()
        warm = ctx.last_result.duration
        assert warm < cold * 0.6

    def test_serialized_cache_pays_deserialization(self, engine):
        from repro.datamodel import PLAIN as SERIALIZED_FMT
        ctx, _ = dfs_ctx(engine, PLAIN, blocks=6, block_mb=96)
        deser = ctx.text_file("input")
        deser.cache(fmt=DESERIALIZED)
        deser.count()
        deser.count()
        warm_deser = ctx.last_result.duration

        ctx2, _ = dfs_ctx(engine, PLAIN, blocks=6, block_mb=96)
        ser = ctx2.text_file("input")
        ser.cache(fmt=SERIALIZED_FMT)
        ser.count()
        ser.count()
        warm_ser = ctx2.last_result.duration
        # A serialized cache still decodes on read (§6.3's distinction).
        assert warm_ser > warm_deser
