"""Tests for the multi-user fair task scheduling policy (§8)."""

import pytest

from repro.api import AnalyticsContext
from repro.api.plan import CollectOutput
from repro.cluster import hdd_cluster
from repro.errors import ExecutionError


def submit_two_jobs(policy, tasks_per_job=24):
    """One big job submitted first, a small one right after."""
    ctx = AnalyticsContext(hdd_cluster(num_machines=1), engine="monospark",
                           scheduling_policy=policy)
    big = ctx.parallelize(range(tasks_per_job * 4),
                          num_partitions=tasks_per_job * 4).map(
        _burn)
    small = ctx.parallelize(range(tasks_per_job),
                            num_partitions=tasks_per_job).map(_burn)
    plans = [ctx.compile(big, CollectOutput(), name="big"),
             ctx.compile(small, CollectOutput(), name="small")]
    results = ctx.run_jobs(plans)
    return {plan.name: result for plan, result in zip(plans, results)}


def _burn(x):
    return x


class TestFairPolicy:
    def test_policy_validated(self):
        with pytest.raises(ExecutionError):
            AnalyticsContext(hdd_cluster(num_machines=1),
                             engine="monospark",
                             scheduling_policy="priority")

    def test_results_identical_across_policies(self):
        fifo = submit_two_jobs("fifo")
        fair = submit_two_jobs("fair")
        assert sorted(fifo["small"].all_records()) == \
            sorted(fair["small"].all_records())
        assert sorted(fifo["big"].all_records()) == \
            sorted(fair["big"].all_records())

    def test_fair_policy_helps_the_small_job(self):
        """Under FIFO the big job's backlog delays the small job; fair
        sharing interleaves them."""
        # Make tasks meaningfully long so ordering matters.
        from repro.api.ops import OpCost
        def run(policy):
            ctx = AnalyticsContext(hdd_cluster(num_machines=1),
                                   engine="monospark",
                                   scheduling_policy=policy)
            big = ctx.parallelize(range(96), num_partitions=96).map(
                lambda x: x, cost=OpCost(per_record_s=0.5))
            small = ctx.parallelize(range(8), num_partitions=8).map(
                lambda x: x, cost=OpCost(per_record_s=0.5))
            plans = [ctx.compile(big, CollectOutput(), name="big"),
                     ctx.compile(small, CollectOutput(), name="small")]
            results = ctx.run_jobs(plans)
            return results[1].duration  # the small job's completion

        assert run("fair") < run("fifo") * 0.8

    def test_fair_does_not_break_single_job(self):
        ctx = AnalyticsContext(hdd_cluster(num_machines=2),
                               engine="spark", scheduling_policy="fair")
        out = ctx.parallelize(range(20), num_partitions=4).collect()
        assert sorted(out) == list(range(20))
