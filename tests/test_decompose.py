"""Unit tests for multitask -> monotask DAG decomposition (Figure 4)."""

import pytest

from repro.api.ops import MapOp
from repro.api.partitioners import HashPartitioner
from repro.api.plan import (CollectOutput, DfsOutput, LocalInput,
                            ShuffleDep, ShuffleInput, ShuffleOutput,
                            TaskDescriptor)
from repro.cluster import hdd_cluster
from repro.config import CostModel, MB
from repro.datamodel import PLAIN, Partition
from repro.engine.semantics import ResolvedInput, compute_task_work
from repro.metrics.events import (PHASE_CLEANUP, PHASE_COMPUTE,
                                  PHASE_INPUT_READ, PHASE_OUTPUT_WRITE,
                                  PHASE_SETUP, PHASE_SHUFFLE_READ,
                                  PHASE_SHUFFLE_WRITE)
from repro.monospark.decompose import decompose
from repro.monospark.engine import MonoSparkEngine
from repro.monospark.monotask import (ComputeMonotask, DiskMonotask,
                                      NetworkFetchMonotask)


@pytest.fixture
def worker():
    cluster = hdd_cluster(num_machines=2)
    engine = MonoSparkEngine(cluster)
    return engine.workers[0]


def make_work(worker, input_spec, output_spec, inputs):
    descriptor = TaskDescriptor(job_id=0, stage_id=0, index=0,
                                input=input_spec, chain=[MapOp(lambda x: x)],
                                output=output_spec)
    return compute_task_work(descriptor, inputs, CostModel())


def resolved_local(worker, nbytes=32 * MB, machine_id=0, disk_index=0):
    part = Partition.from_records([(1, 1)], record_count=1,
                                  data_bytes=nbytes)
    return ResolvedInput(partition=part, stored_bytes=nbytes, fmt=PLAIN,
                         machine_id=machine_id, disk_index=disk_index)


def phases(decomposition):
    return [type(m).__name__ + ":" + m.phase
            for m in decomposition.monotasks]


class TestMapDecomposition:
    def test_figure4_map_multitask(self, worker):
        """setup -> disk read -> compute -> shuffle write -> cleanup."""
        from repro.api.plan import DfsInput
        from repro.cluster.hdfs import DfsBlock
        block = DfsBlock(file_name="f", index=0, nbytes=32 * MB,
                         replicas=[(0, 0)],
                         payload=Partition.from_records([(1, 1)]))
        work = make_work(
            worker, DfsInput(block),
            ShuffleOutput(shuffle_id=0, partitioner=HashPartitioner(2)),
            [resolved_local(worker)])
        decomposition = decompose(worker, work)
        assert phases(decomposition) == [
            "ComputeMonotask:setup",
            "DiskMonotask:input_read",
            "ComputeMonotask:compute",
            "DiskMonotask:shuffle_write",
            "ComputeMonotask:cleanup",
        ]
        # Dependencies: read after setup; compute after read; write after
        # compute; cleanup last.
        setup, read, compute, write, cleanup = decomposition.monotasks
        assert setup in read.deps
        assert read in compute.deps
        assert compute in write.deps
        assert write in cleanup.deps

    def test_remote_block_uses_network(self, worker):
        from repro.api.plan import DfsInput
        from repro.cluster.hdfs import DfsBlock
        block = DfsBlock(file_name="f", index=0, nbytes=32 * MB,
                         replicas=[(1, 0)],
                         payload=Partition.from_records([(1, 1)]))
        work = make_work(worker, DfsInput(block), CollectOutput(),
                         [resolved_local(worker, machine_id=1)])
        decomposition = decompose(worker, work)
        kinds = phases(decomposition)
        assert "NetworkFetchMonotask:input_read" in kinds
        assert not any("DiskMonotask" in k for k in kinds)


class TestReduceDecomposition:
    def test_local_buckets_coalesce_per_disk(self, worker):
        spec = ShuffleInput(
            deps=[ShuffleDep(shuffle_id=0, num_maps=4)], reduce_index=0)
        inputs = [resolved_local(worker, nbytes=4 * MB, machine_id=0,
                                 disk_index=index % 2)
                  for index in range(4)]
        work = make_work(worker, spec, CollectOutput(), inputs)
        decomposition = decompose(worker, work)
        disk_reads = [m for m in decomposition.monotasks
                      if isinstance(m, DiskMonotask)
                      and m.phase == PHASE_SHUFFLE_READ]
        # One read per local disk, not per bucket.
        assert len(disk_reads) == 2
        assert all(m.nbytes == 8 * MB for m in disk_reads)

    def test_remote_buckets_form_one_fetch_group(self, worker):
        spec = ShuffleInput(
            deps=[ShuffleDep(shuffle_id=0, num_maps=4)], reduce_index=0)
        inputs = [resolved_local(worker, nbytes=4 * MB, machine_id=1,
                                 disk_index=index % 2)
                  for index in range(4)]
        work = make_work(worker, spec, CollectOutput(), inputs)
        decomposition = decompose(worker, work)
        fetches = [m for m in decomposition.monotasks
                   if isinstance(m, NetworkFetchMonotask)]
        assert len(fetches) == 1
        assert fetches[0].total_bytes == 16 * MB
        # Sources coalesced per (machine, disk).
        assert len(fetches[0].sources) == 2

    def test_output_disk_deferred_until_routing(self, worker):
        work = make_work(worker,
                         LocalInput(Partition.from_records([(1, 1)])),
                         DfsOutput(file_name="out"),
                         [ResolvedInput(
                             partition=Partition.from_records(
                                 [(1, 1)], data_bytes=8 * MB),
                             stored_bytes=0.0, fmt=PLAIN,
                             in_memory=True)])
        decomposition = decompose(worker, work)
        write = decomposition.output_monotask
        assert write is not None
        assert write.disk_index is None  # chosen at routing time (§8)
        assert decomposition.output_disk is None

    def test_collect_has_no_output_monotask(self, worker):
        work = make_work(worker,
                         LocalInput(Partition.from_records([(1, 1)])),
                         CollectOutput(),
                         [ResolvedInput(
                             partition=Partition.from_records([(1, 1)]),
                             stored_bytes=0.0, fmt=PLAIN,
                             in_memory=True)])
        decomposition = decompose(worker, work)
        assert decomposition.output_monotask is None
        assert [m.phase for m in decomposition.monotasks] == [
            PHASE_SETUP, PHASE_COMPUTE, PHASE_CLEANUP]
