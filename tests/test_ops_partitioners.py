"""Unit tests for physical operators and partitioners."""

import pytest

from repro.api.ops import (CoGroupOp, CombineByKeyOp, FilterOp, FlatMapOp,
                           GroupByKeyOp, JoinFlattenOp, MapOp,
                           MapPartitionsOp, OpCost, SortOp, run_chain)
from repro.api.partitioners import HashPartitioner, RangePartitioner
from repro.datamodel import Partition
from repro.errors import PlanError


def part(records, count=None, nbytes=None):
    return Partition.from_records(records, record_count=count,
                                  data_bytes=nbytes)


class TestNarrowOps:
    def test_map(self):
        op = MapOp(lambda x: x * 2)
        out = op.transform(part([1, 2, 3]))
        assert out.records == [2, 4, 6]
        assert out.record_count == 3

    def test_flat_map(self):
        op = FlatMapOp(lambda s: s.split())
        out = op.transform(part(["a b", "c"]))
        assert out.records == ["a", "b", "c"]

    def test_filter_scales_modeled_sizes(self):
        op = FilterOp(lambda x: x % 2 == 0)
        out = op.transform(part([0, 1, 2, 3], count=1000, nbytes=4000))
        assert out.records == [0, 2]
        assert out.record_count == pytest.approx(500)
        assert out.data_bytes == pytest.approx(2000)

    def test_map_partitions(self):
        op = MapPartitionsOp(lambda records: [sum(records)])
        out = op.transform(part([1, 2, 3]))
        assert out.records == [6]

    def test_explicit_count_ratio_overrides_sample(self):
        op = FilterOp(lambda x: x < 2, count_ratio=0.1)
        out = op.transform(part([0, 1, 2, 3], count=1000, nbytes=4000))
        assert out.record_count == pytest.approx(100)
        assert out.data_bytes == pytest.approx(400)

    def test_size_ratio_override(self):
        op = MapOp(lambda x: x, size_ratio=0.5)
        out = op.transform(part([1, 2], count=100, nbytes=1000))
        assert out.data_bytes == pytest.approx(500)
        assert out.record_count == pytest.approx(100)

    def test_output_row_bytes_override(self):
        op = MapOp(lambda x: x, output_row_bytes=lambda r: 10.0)
        out = op.transform(part([1, 2], count=100, nbytes=1000))
        assert out.data_bytes == pytest.approx(1000.0)

    def test_empty_partition_passthrough(self):
        op = MapOp(lambda x: x)
        out = op.transform(Partition(records=[], record_count=50,
                                     data_bytes=500))
        assert out.record_count == 50
        assert out.data_bytes == 500

    def test_cpu_seconds_uses_modeled_sizes(self):
        op = MapOp(lambda x: x, cost=OpCost(per_record_s=1e-6,
                                            per_byte_s=1e-9))
        seconds = op.cpu_seconds(part([1], count=1e6, nbytes=1e9))
        assert seconds == pytest.approx(1.0 + 1.0)


class TestAggregationOps:
    def test_combine_by_key(self):
        op = CombineByKeyOp(lambda a, b: a + b)
        out = op.apply([("a", 1), ("b", 2), ("a", 3)])
        assert sorted(out) == [("a", 4), ("b", 2)]

    def test_group_by_key(self):
        op = GroupByKeyOp()
        out = dict(op.apply([("a", 1), ("a", 2), ("b", 3)]))
        assert out == {"a": [1, 2], "b": [3]}

    def test_sort(self):
        op = SortOp()
        out = op.apply([(3, "c"), (1, "a"), (2, "b")])
        assert [k for k, _ in out] == [1, 2, 3]

    def test_cogroup_and_join(self):
        cogroup = CoGroupOp(2)
        tagged = [("k", (0, "l1")), ("k", (1, "r1")), ("k", (0, "l2")),
                  ("q", (0, "only-left"))]
        grouped = cogroup.apply(tagged)
        joined = JoinFlattenOp().apply(grouped)
        assert sorted(joined) == [("k", ("l1", "r1")), ("k", ("l2", "r1"))]

    def test_cogroup_needs_sides(self):
        with pytest.raises(PlanError):
            CoGroupOp(0)


class TestRunChain:
    def test_chain_applies_in_order_and_sums_cpu(self):
        chain = [
            MapOp(lambda x: x + 1, cost=OpCost(per_record_s=1.0)),
            FilterOp(lambda x: x > 2, cost=OpCost(per_record_s=1.0)),
        ]
        out, cpu = run_chain(part([1, 2, 3]), chain)
        assert out.records == [3, 4]
        # map charged on 3 records, filter on 3 records.
        assert cpu == pytest.approx(6.0)

    def test_empty_chain(self):
        src = part([1])
        out, cpu = run_chain(src, [])
        assert out.records == [1]
        assert cpu == 0.0


class TestHashPartitioner:
    def test_deterministic_across_instances(self):
        a = HashPartitioner(8)
        b = HashPartitioner(8)
        for key in ["x", "hello", 42, (1, "a"), 3.5, True]:
            assert a.partition((key, None)) == b.partition((key, None))

    def test_all_buckets_in_range(self):
        p = HashPartitioner(4)
        buckets = p.split([(i, None) for i in range(100)])
        assert len(buckets) == 4
        assert sum(len(b) for b in buckets) == 100

    def test_roughly_balanced(self):
        p = HashPartitioner(4)
        buckets = p.split([(f"key-{i}", None) for i in range(1000)])
        sizes = [len(b) for b in buckets]
        assert min(sizes) > 100

    def test_invalid_partition_count(self):
        with pytest.raises(PlanError):
            HashPartitioner(0)


class TestRangePartitioner:
    def test_routing(self):
        p = RangePartitioner([10, 20])
        assert p.num_partitions == 3
        assert p.partition((5, None)) == 0
        assert p.partition((10, None)) == 0
        assert p.partition((15, None)) == 1
        assert p.partition((25, None)) == 2

    def test_unsorted_boundaries_rejected(self):
        with pytest.raises(PlanError):
            RangePartitioner([20, 10])

    def test_from_sample_balances(self):
        keys = list(range(1000))
        p = RangePartitioner.from_sample(keys, 4)
        buckets = p.split([(k, None) for k in keys])
        sizes = [len(b) for b in buckets]
        assert max(sizes) - min(sizes) <= 10

    def test_from_sample_single_partition(self):
        p = RangePartitioner.from_sample([1, 2], 1)
        assert p.num_partitions == 1

    def test_from_empty_sample_rejected(self):
        with pytest.raises(PlanError):
            RangePartitioner.from_sample([], 4)

    def test_preserves_global_order(self):
        keys = [5, 3, 8, 1, 9, 2]
        p = RangePartitioner.from_sample(keys, 3)
        buckets = p.split([(k, None) for k in keys])
        flattened = [k for bucket in buckets for k, _ in sorted(bucket)]
        assert flattened == sorted(keys)
