"""Tests for repro.xray: run capsules, queries, and the differential
performance debugger.

The recording fixtures are module-scoped: the canonical clean/degraded
pair (and their Spark twins) are simulated once and shared by the
round-trip, query, diff, and golden-blame tests.
"""

import json

import pytest

from repro.errors import CapsuleError
from repro.xray import (CAPSULE_SCHEMA, CanonicalRun, Capsule, CapsuleQuery,
                        align_jobs, diff_capsules, record_run)


SMALL = CanonicalRun(jobs=3, block_mb=8.0)


@pytest.fixture(scope="module")
def capsule_dir(tmp_path_factory):
    return tmp_path_factory.mktemp("capsules")


@pytest.fixture(scope="module")
def clean(capsule_dir):
    return record_run(str(capsule_dir / "clean.capsule"), CanonicalRun())


@pytest.fixture(scope="module")
def degraded(capsule_dir):
    return record_run(str(capsule_dir / "degraded.capsule"),
                      CanonicalRun().degraded(machine=1))


@pytest.fixture(scope="module")
def spark_clean(capsule_dir):
    return record_run(str(capsule_dir / "spark-clean.capsule"),
                      CanonicalRun(engine="spark"))


@pytest.fixture(scope="module")
def spark_degraded(capsule_dir):
    return record_run(str(capsule_dir / "spark-degraded.capsule"),
                      CanonicalRun(engine="spark").degraded(machine=1))


class TestCapsuleRoundTrip:
    @pytest.mark.parametrize("engine", ["monospark", "spark"])
    @pytest.mark.parametrize("seed", [1, 2, 3])
    def test_record_load_save_byte_identical(self, tmp_path, engine, seed):
        # The seeded property: for any seed and either engine, recording
        # twice is byte-identical, and a loaded capsule re-serializes to
        # exactly the recorded bytes (lossless parse, not a line echo).
        run = CanonicalRun(engine=engine, seed=seed, jobs=3, block_mb=8.0)
        first, again = tmp_path / "a.capsule", tmp_path / "b.capsule"
        capsule = record_run(str(first), run)
        record_run(str(again), run)
        original = first.read_bytes()
        assert original == again.read_bytes()
        resaved = tmp_path / "c.capsule"
        capsule.save(str(resaved))
        assert resaved.read_bytes() == original

    def test_header_carries_run_identity(self, clean):
        assert clean.header["type"] == "capsule"
        assert clean.header["schema"] == CAPSULE_SCHEMA
        assert clean.engine == "monospark"
        assert clean.seed == 1
        assert clean.config["block_mb"] == 48.0

    def test_every_line_is_schema_versioned(self, clean):
        with open(clean.path) as handle:
            for line in handle:
                assert json.loads(line)["schema"] == CAPSULE_SCHEMA

    def test_manifest_counts_match_body(self, clean):
        counts = clean.manifest["counts"]
        assert counts["span"] == len(clean.spans)
        assert counts["serve"] == len(clean.serves)
        assert counts["job"] == len(clean.jobs)
        assert clean.manifest["lines"] == sum(counts.values()) + 2

    def test_loads_without_resimulation(self, clean):
        # A second load touches only the file.
        reloaded = Capsule.load(clean.path)
        assert len(reloaded.spans) == len(clean.spans)
        assert reloaded.summary == clean.summary
        job_id = sorted(reloaded.jobs)[0]
        report = reloaded.critical_path_report(job_id)
        assert report.duration > 0 and report.attributable

    def test_no_wall_clock_series_recorded(self, clean):
        names = {name for name, _, _ in clean.telemetry}
        assert "repro_obs_self_overhead_ms_per_s" not in names
        assert names  # ...but the rest of the registry is there


class TestCapsuleValidation:
    def _lines(self, capsule):
        with open(capsule.path) as handle:
            return handle.read().splitlines()

    def _write(self, tmp_path, lines):
        path = tmp_path / "bad.capsule"
        path.write_text("\n".join(lines) + "\n")
        return str(path)

    def test_unknown_schema_rejected(self, tmp_path, clean):
        lines = self._lines(clean)
        record = json.loads(lines[3])
        record["schema"] = 99
        lines[3] = json.dumps(record, separators=(",", ":"))
        with pytest.raises(CapsuleError, match="schema"):
            Capsule.load(self._write(tmp_path, lines))

    def test_missing_schema_rejected(self, tmp_path, clean):
        lines = self._lines(clean)
        record = json.loads(lines[3])
        del record["schema"]
        lines[3] = json.dumps(record, separators=(",", ":"))
        with pytest.raises(CapsuleError, match="schema"):
            Capsule.load(self._write(tmp_path, lines))

    def test_truncated_capsule_rejected(self, tmp_path, clean):
        lines = self._lines(clean)
        with pytest.raises(CapsuleError):
            Capsule.load(self._write(tmp_path, lines[:-4]))

    def test_count_mismatch_rejected(self, tmp_path, clean):
        lines = self._lines(clean)
        manifest = json.loads(lines[-1])
        manifest["counts"]["span"] += 1
        lines[-1] = json.dumps(manifest, separators=(",", ":"))
        with pytest.raises(CapsuleError, match="counts"):
            Capsule.load(self._write(tmp_path, lines))

    def test_not_a_capsule_rejected(self, tmp_path):
        path = tmp_path / "nope.capsule"
        path.write_text('{"traceEvents": []}\n')
        with pytest.raises(CapsuleError):
            Capsule.load(str(path))


class TestQuery:
    def test_aggregate_by_resource_sees_monotask_layer(self, clean):
        rows = CapsuleQuery(clean).aggregate(group_by="resource")
        keys = {row.key for row in rows}
        assert "cpu" in keys and "network" in keys
        assert rows == sorted(rows, key=lambda r: (-r.total_s, r.key))

    def test_aggregate_percentiles_ordered(self, clean):
        for row in CapsuleQuery(clean).aggregate(group_by="machine"):
            assert row.p50_s <= row.p95_s <= row.p99_s
            assert row.count > 0 and row.total_s >= 0

    def test_filters_compose(self, clean):
        query = CapsuleQuery(clean)
        rows = query.aggregate(group_by="phase", resource="network",
                               machine=1)
        for span in query.spans(resource="network", machine=1):
            assert span.machine_id == 1 and span.resource == "network"
        assert all(row.key for row in rows)

    def test_queue_metric(self, degraded):
        rows = CapsuleQuery(degraded).aggregate(group_by="resource",
                                                metric="queue")
        assert all(row.total_s >= 0 for row in rows)

    def test_group_by_tenant_and_stage(self, clean):
        query = CapsuleQuery(clean)
        tenants = {r.key for r in query.aggregate(group_by="tenant")}
        assert tenants == {"analytics"}
        assert query.aggregate(group_by="stage")

    def test_unknown_group_and_metric_rejected(self, clean):
        query = CapsuleQuery(clean)
        with pytest.raises(CapsuleError):
            query.aggregate(group_by="bogus")
        with pytest.raises(CapsuleError):
            query.aggregate(metric="bogus")

    def test_tenant_rates_red(self, clean):
        rows = CapsuleQuery(clean).tenant_rates()
        assert len(rows) == 1
        row = rows[0]
        assert row.tenant == "analytics"
        assert row.requests == 12 and row.completed == 12
        assert row.errors == 0
        assert row.rate_per_s > 0
        assert row.p50_s <= row.p95_s <= row.p99_s

    def test_spark_capsule_defaults_to_attempt_spans(self, spark_clean):
        rows = CapsuleQuery(spark_clean).aggregate(group_by="kind")
        assert {row.key for row in rows} == {"attempt"}


class TestAlignment:
    def test_canonical_runs_align_fully(self, clean, degraded):
        pairs, unmatched_a, unmatched_b = align_jobs(clean, degraded)
        assert len(pairs) == 12
        assert unmatched_a == 0 and unmatched_b == 0
        for pair in pairs:
            assert pair.tenant == "analytics"
            assert pair.duration_a > 0 and pair.duration_b > 0

    def test_unequal_job_counts_partially_align(self, tmp_path, clean):
        short = record_run(str(tmp_path / "short.capsule"),
                           CanonicalRun(jobs=3, block_mb=48.0))
        pairs, unmatched_a, unmatched_b = align_jobs(clean, short)
        assert len(pairs) == 3
        assert unmatched_a == 9 and unmatched_b == 0


class TestDiff:
    def test_fail_slow_blames_network_on_machine_1(self, clean, degraded):
        report = diff_capsules(clean, degraded)
        assert report.attributable
        assert report.delta_total > 0
        top = report.entries[0]
        assert top.label == "network"
        assert top.machine_id == 1
        assert top.phase == "shuffle_read"
        assert top.delta > 0
        assert top.delta >= 0.5 * report.delta_total

    def test_golden_blame_narrative(self, clean, degraded):
        # The pinned golden: same seeds => this exact sentence.  If a
        # simulator change legitimately shifts it, BENCH_xray.json
        # moves too -- update both together.
        report = diff_capsules(clean, degraded)
        assert report.narrative() == (
            "+27.1s total: 74% network on machine 1 during shuffle_read; "
            "first diverging span: job 1 job-1/93 (+1.36s)")

    def test_diff_report_is_deterministic(self, capsule_dir, clean,
                                          degraded, tmp_path):
        # Same basenames in a fresh directory: the report text names
        # capsules by basename, so independent recordings must match.
        again_clean = record_run(str(tmp_path / "clean.capsule"),
                                 CanonicalRun())
        again_degraded = record_run(str(tmp_path / "degraded.capsule"),
                                    CanonicalRun().degraded(machine=1))
        first = diff_capsules(clean, degraded)
        second = diff_capsules(again_clean, again_degraded)
        assert first.format() == second.format()
        assert first.to_dict() == second.to_dict()

    def test_deltas_sum_to_total(self, clean, degraded):
        # Critical-path segments partition each job window, so summing
        # every cell (including sub-noise ones) recovers the total.
        report = diff_capsules(clean, degraded, noise_floor_s=0.0,
                               min_fraction=0.0)
        assert sum(e.delta for e in report.entries) == \
            pytest.approx(report.delta_total, abs=1e-6)

    def test_exemplar_spans_exist_in_capsule_b(self, clean, degraded):
        report = diff_capsules(clean, degraded)
        spans_by_id = {span.span_id for span in degraded.spans}
        for entry in report.entries:
            if entry.exemplar_span >= 0:
                assert entry.exemplar_span in spans_by_id

    def test_self_diff_is_silent(self, clean):
        report = diff_capsules(clean, clean)
        assert report.entries == []
        assert report.delta_total == 0.0
        assert not report.regression(0.5)

    def test_regression_thresholds(self, clean, degraded):
        report = diff_capsules(clean, degraded)
        assert report.regression(0.5)
        assert not report.regression(report.delta_total + 1.0)

    def test_spark_diff_not_attributable(self, spark_clean,
                                         spark_degraded):
        report = diff_capsules(spark_clean, spark_degraded)
        assert not report.attributable
        assert "NOT ATTRIBUTABLE" in report.format()
        assert "NOT ATTRIBUTABLE" in report.narrative()

    def test_mixed_engine_diff_not_attributable(self, clean, spark_clean):
        report = diff_capsules(clean, spark_clean)
        assert not report.attributable


class TestCollectorCache:
    def _run_job(self):
        from repro import MB, AnalyticsContext
        from repro.cluster import hdd_cluster
        from repro.workloads.wordcount import (generate_text_input,
                                               word_count)
        cluster = hdd_cluster(num_machines=2, num_disks=1, seed=0)
        generate_text_input(cluster, num_blocks=4, block_bytes=4 * MB,
                            seed=0)
        ctx = AnalyticsContext(cluster, engine="monospark")
        word_count(ctx)
        return ctx

    def test_report_is_cached(self):
        ctx = self._run_job()
        job_id = ctx.last_result.job_id
        first = ctx.metrics.critical_path_report(job_id,
                                                 engine="monospark")
        assert ctx.metrics.critical_path_report(
            job_id, engine="monospark") is first

    def test_new_span_invalidates(self):
        from repro.trace.spans import SPAN_MONOTASK, SpanRecord
        ctx = self._run_job()
        job_id = ctx.last_result.job_id
        first = ctx.metrics.critical_path_report(job_id,
                                                 engine="monospark")
        ctx.metrics.record_span(SpanRecord(
            span_id=10 ** 9, trace_id=f"job-{job_id}", parent_id=None,
            kind=SPAN_MONOTASK, name="late", start=0.0, end=0.1,
            machine_id=0, resource="cpu", phase="compute"))
        assert ctx.metrics.critical_path_report(
            job_id, engine="monospark") is not first

    def test_engine_label_keys_are_distinct(self):
        ctx = self._run_job()
        job_id = ctx.last_result.job_id
        mono = ctx.metrics.critical_path_report(job_id,
                                                engine="monospark")
        default = ctx.metrics.critical_path_report(job_id)
        assert mono is ctx.metrics.critical_path_report(
            job_id, engine="monospark")
        assert default is ctx.metrics.critical_path_report(job_id)


class TestSinkSatellites:
    def test_span_sink_context_manager_flush_and_schema(self, tmp_path):
        from repro.trace.sink import TRACE_SCHEMA, JsonlSpanSink
        from repro.trace.spans import SPAN_MONOTASK, SpanRecord
        path = tmp_path / "spans.jsonl"
        with JsonlSpanSink(str(path)) as sink:
            sink.span_finished(SpanRecord(
                span_id=1, trace_id="job-0", parent_id=None,
                kind=SPAN_MONOTASK, name="m", start=0.0, end=1.0))
            sink.flush()
            flushed = path.read_text()
        assert flushed  # visible before close, thanks to flush()
        (line,) = path.read_text().splitlines()
        assert json.loads(line)["schema"] == TRACE_SCHEMA

    def test_journal_sink_context_manager_flush_and_schema(self, tmp_path):
        from repro.obs.journal import (JOURNAL_SCHEMA, EventJournal,
                                       JournalEvent, JsonlJournalSink)
        path = tmp_path / "journal.jsonl"
        with JsonlJournalSink(str(path)) as sink:
            journal = EventJournal(sink=sink)
            journal.append(JournalEvent(t=1.0, severity="info",
                                        source="test", kind="k",
                                        subject="machine 0"))
            sink.flush()
            assert path.read_text()
        (line,) = path.read_text().splitlines()
        assert json.loads(line)["schema"] == JOURNAL_SCHEMA


class TestCli:
    def test_record_query_diff_regress(self, tmp_path, capsys):
        from repro.cli import main
        clean = str(tmp_path / "a.capsule")
        degraded = str(tmp_path / "b.capsule")
        base = ["--jobs", "3", "--block-mb", "8"]
        assert main(["xray", "record", clean] + base) == 0
        assert main(["xray", "record", degraded, "--degrade-machine", "1"]
                    + base) == 0
        capsys.readouterr()

        assert main(["xray", "query", clean, "--group-by", "machine"]) == 0
        out = capsys.readouterr().out
        assert "machine 0" in out

        assert main(["xray", "query", clean, "--rates"]) == 0
        assert "analytics" in capsys.readouterr().out

        assert main(["xray", "diff", clean, degraded]) == 0
        assert "run diff:" in capsys.readouterr().out

        assert main(["xray", "diff", clean, degraded, "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["aligned_jobs"] == 3

        # regress plumbing: a tiny threshold trips, a huge one passes
        assert main(["xray", "regress", clean, degraded,
                     "--threshold", "0.0"]) == 3
        assert "REGRESSION" in capsys.readouterr().out
        assert main(["xray", "regress", clean, degraded,
                     "--threshold", "1000000"]) == 0
        assert "ok:" in capsys.readouterr().out

    def test_self_regress_is_clean(self, tmp_path, capsys):
        from repro.cli import main
        path = str(tmp_path / "a.capsule")
        assert main(["xray", "record", path, "--jobs", "3",
                     "--block-mb", "8"]) == 0
        assert main(["xray", "regress", path, path]) == 0
