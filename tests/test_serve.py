"""Tests for the continuous serving layer (``repro.serve``)."""

import pytest

from repro.api.context import AnalyticsContext
from repro.api.plan import DfsOutput, ShuffleInput, ShuffleOutput
from repro.cluster import hdd_cluster
from repro.errors import ConfigError, PlanError, SimulationError
from repro.faults import FaultInjector, FaultPlan, MachineCrash
from repro.serve import (AdmissionController, CostEstimator,
                         DeadlineScheduler, JobServer, PoissonArrivals,
                         BurstyArrivals, TraceArrivals, WeightedFairScheduler,
                         instantiate_plan, make_scheduler, ml_template,
                         sort_template, wordcount_template)
from repro.simulator.rng import RngStreams


def make_ctx(engine="monospark", machines=2, **options):
    cluster = hdd_cluster(num_machines=machines, num_disks=2)
    return AnalyticsContext(cluster, engine=engine, **options)


def small_wc(ctx, name="wordcount"):
    return wordcount_template(ctx, num_blocks=2, block_mb=8.0, name=name)


class TestArrivals:
    def test_poisson_deterministic_and_bounded(self):
        arrivals = PoissonArrivals(rate_per_s=0.5, horizon_s=100.0)
        first = list(arrivals.times(RngStreams(3).stream("a")))
        second = list(arrivals.times(RngStreams(3).stream("a")))
        assert first == second
        assert first
        assert all(0 < t < 100.0 for t in first)
        assert first == sorted(first)

    def test_poisson_streams_independent(self):
        arrivals = PoissonArrivals(rate_per_s=0.5, horizon_s=100.0)
        a = list(arrivals.times(RngStreams(3).stream("a")))
        b = list(arrivals.times(RngStreams(3).stream("b")))
        assert a != b

    def test_bursty_rate_oscillates_between_base_and_peak(self):
        arrivals = BurstyArrivals(base_rate_per_s=0.1, peak_rate_per_s=1.0,
                                  period_s=100.0, horizon_s=200.0)
        assert arrivals.rate_at(0.0) == pytest.approx(0.1)
        assert arrivals.rate_at(50.0) == pytest.approx(1.0)
        times = list(arrivals.times(RngStreams(0).stream("x")))
        assert times == sorted(times)
        assert all(0 < t < 200.0 for t in times)

    def test_trace_replay_is_exact(self):
        trace = TraceArrivals([5.0, 1.0, 3.0])
        assert list(trace.times(RngStreams(0).stream("x"))) == [1.0, 3.0, 5.0]
        assert trace.horizon_s == 5.0

    def test_invalid_configs_rejected(self):
        with pytest.raises(ConfigError):
            PoissonArrivals(rate_per_s=0.0, horizon_s=10.0)
        with pytest.raises(ConfigError):
            PoissonArrivals(rate_per_s=1.0, horizon_s=float("inf"))
        with pytest.raises(ConfigError):
            BurstyArrivals(base_rate_per_s=2.0, peak_rate_per_s=1.0,
                           period_s=10.0, horizon_s=10.0)
        with pytest.raises(ConfigError):
            TraceArrivals([-1.0, 2.0])


class TestTemplates:
    def test_instantiate_allocates_fresh_ids(self):
        ctx = make_ctx()
        template = small_wc(ctx)
        first = template.instantiate(ctx)
        second = template.instantiate(ctx)
        assert first.job_id != second.job_id
        for plan in (first, second):
            for stage in plan.stages:
                for task in stage.tasks:
                    assert task.job_id == plan.job_id

    def test_shuffle_ids_remapped_consistently(self):
        ctx = make_ctx()
        template = small_wc(ctx)
        base = template.base_plan(ctx)
        clone = template.instantiate(ctx)

        def shuffle_ids(plan):
            outs, ins = set(), set()
            for stage in plan.stages:
                for task in stage.tasks:
                    if isinstance(task.output, ShuffleOutput):
                        outs.add(task.output.shuffle_id)
                    if isinstance(task.input, ShuffleInput):
                        ins.update(dep.shuffle_id
                                   for dep in task.input.deps)
            return outs, ins

        base_outs, base_ins = shuffle_ids(base)
        clone_outs, clone_ins = shuffle_ids(clone)
        # Map-side writes and reduce-side reads must agree on the new id,
        # and it must differ from the template's.
        assert clone_outs == clone_ins
        assert clone_outs.isdisjoint(base_outs)

    def test_dfs_outputs_are_per_instance(self):
        ctx = make_ctx()
        template = small_wc(ctx)
        first = template.instantiate(ctx)
        second = template.instantiate(ctx)

        def out_files(plan):
            return {task.output.file_name for stage in plan.stages
                    for task in stage.tasks
                    if isinstance(task.output, DfsOutput)}

        assert out_files(first).isdisjoint(out_files(second))

    def test_compiles_once_per_context(self):
        ctx = make_ctx()
        template = small_wc(ctx)
        for _ in range(3):
            template.instantiate(ctx)
        assert template.compile_count == 1

    def test_cached_plans_rejected(self):
        ctx = make_ctx()
        small_wc(ctx, name="wc")  # generates the serve-wc-in input file
        rdd = ctx.text_file("serve-wc-in")
        rdd.cache()
        plan = ctx.compile(rdd.map(lambda x: x), DfsOutput(file_name="out"))
        with pytest.raises(PlanError):
            instantiate_plan(plan, ctx.dag_scheduler)


class TestSubmitJob:
    def test_duplicate_job_id_in_batch_rejected(self):
        ctx = make_ctx()
        template = small_wc(ctx)
        plan = template.instantiate(ctx)
        with pytest.raises(SimulationError):
            ctx.engine.run_jobs([plan, plan])

    def test_resubmitting_a_plan_rejected(self):
        ctx = make_ctx()
        template = small_wc(ctx)
        plan = template.instantiate(ctx)
        ctx.engine.run_job(plan)
        with pytest.raises(SimulationError):
            ctx.engine.run_job(plan)

    def test_distinct_plans_still_run_concurrently(self):
        ctx = make_ctx()
        template = small_wc(ctx)
        plans = [template.instantiate(ctx) for _ in range(2)]
        results = ctx.run_jobs(plans)
        assert len(results) == 2
        assert results[0].job_id != results[1].job_id
        assert all(r.duration > 0 for r in results)


class TestAdmission:
    def test_bounds_validated(self):
        with pytest.raises(ConfigError):
            AdmissionController(max_queued_jobs=-1)
        with pytest.raises(ConfigError):
            AdmissionController(max_backlog_s=0.0)

    def test_queue_bound(self):
        controller = AdmissionController(max_queued_jobs=2)
        assert controller.decide(1.0, [])[0]
        assert controller.decide(1.0, [1.0])[0]
        admit, reason = controller.decide(1.0, [1.0, 1.0])
        assert not admit
        assert "queue full" in reason

    def test_backlog_bound_ignores_unknown_estimates(self):
        controller = AdmissionController(max_backlog_s=10.0)
        # First instances (no estimate) are admitted on faith.
        assert controller.decide(None, [None, None])[0]
        admit, reason = controller.decide(6.0, [5.0, None])
        assert not admit
        assert "backlog" in reason

    def test_estimator_reprices_on_live_machines_monospark_only(self):
        measured = {}
        estimates = {}
        for engine in ("spark", "monospark"):
            ctx = make_ctx(engine)
            template = small_wc(ctx)
            result = ctx.engine.run_job(template.instantiate(ctx))
            estimator = CostEstimator(ctx.engine)
            assert estimator.estimate(template.name) is None
            estimator.observe(template.name, ctx.metrics, result)
            measured[engine] = result.duration
            assert estimator.estimate(template.name) == \
                pytest.approx(result.duration)
            ctx.engine.crash_machine(1)
            estimates[engine] = estimator.estimate(template.name)
        # Spark cannot see the smaller cluster; MonoSpark's model prices
        # the job higher on half the machines.
        assert estimates["spark"] == pytest.approx(measured["spark"])
        assert estimates["monospark"] > measured["monospark"]


class FakeRequest:
    def __init__(self, seq, tenant, arrival=0.0, slo_s=None):
        self.seq = seq
        self.tenant = tenant
        self.arrival = arrival
        self.slo_s = slo_s


class TestSchedulers:
    def test_weighted_fair_prefers_lowest_virtual_time(self):
        scheduler = WeightedFairScheduler()
        scheduler.register_tenant("a", 1.0)
        scheduler.register_tenant("b", 2.0)
        queued = [FakeRequest(0, "a"), FakeRequest(1, "b")]
        # Equal virtual time: tenant name breaks the tie.
        assert scheduler.pick_next(queued).tenant == "a"
        scheduler.credit("a", 10.0)
        assert scheduler.pick_next(queued).tenant == "b"
        # Weight 2 halves accrued virtual time.
        scheduler.credit("b", 10.0)
        assert scheduler.virtual_time("b") == pytest.approx(5.0)
        assert scheduler.pick_next(queued).tenant == "b"

    def test_deadline_orders_by_arrival_plus_slo(self):
        scheduler = DeadlineScheduler()
        urgent = FakeRequest(2, "a", arrival=10.0, slo_s=5.0)
        lax = FakeRequest(0, "b", arrival=0.0, slo_s=100.0)
        best_effort = FakeRequest(1, "c", arrival=0.0, slo_s=None)
        assert scheduler.pick_next([lax, best_effort, urgent]) is urgent
        assert scheduler.pick_next([lax, best_effort]) is lax
        assert scheduler.pick_next([best_effort]) is best_effort

    def test_unknown_policy_rejected(self):
        with pytest.raises(ConfigError):
            make_scheduler("lottery")


class TestJobServer:
    @pytest.mark.parametrize("engine", ["spark", "monospark"])
    def test_single_job_matches_run_job(self, engine):
        ctx_ref = make_ctx(engine)
        reference = ctx_ref.engine.run_job(
            small_wc(ctx_ref).instantiate(ctx_ref))

        ctx = make_ctx(engine)
        server = JobServer(ctx)
        request = server.submit(small_wc(ctx).instantiate(ctx))
        server.run()
        assert request.result is not None
        assert request.result.start == reference.start
        assert request.result.end == reference.end
        assert request.result.duration == reference.duration

    @staticmethod
    def _serve_once(engine, crash=False):
        ctx = make_ctx(engine, scheduling_policy="fair")
        if crash:
            plan = FaultPlan([MachineCrash(at=10.0, machine_id=1,
                                           restart_after=10.0)])
            FaultInjector(ctx.engine, plan).start()
        server = JobServer(ctx,
                           admission=AdmissionController(max_queued_jobs=3),
                           max_concurrent_jobs=2, seed=5)
        server.add_tenant("interactive", weight=2.0, slo_s=30.0)
        server.add_tenant("batch", weight=1.0)
        server.add_workload("interactive", small_wc(ctx),
                            PoissonArrivals(0.15, horizon_s=60.0))
        server.add_workload("batch", ml_template(ctx, num_partitions=2),
                            PoissonArrivals(0.05, horizon_s=60.0))
        return server, server.run()

    @pytest.mark.parametrize("engine", ["spark", "monospark"])
    def test_report_byte_identical_across_runs(self, engine):
        _, first = self._serve_once(engine)
        _, second = self._serve_once(engine)
        assert first.format() == second.format()

    @pytest.mark.parametrize("engine", ["spark", "monospark"])
    def test_report_byte_identical_under_faults(self, engine):
        _, first = self._serve_once(engine, crash=True)
        _, second = self._serve_once(engine, crash=True)
        assert first.format() == second.format()
        assert first.total_completed > 0

    def test_monospark_attributes_queueing_spark_does_not(self):
        _, spark = self._serve_once("spark")
        _, mono = self._serve_once("monospark")
        assert not spark.queue_attribution
        assert "unavailable" in spark.format()
        assert mono.queue_attribution
        for by_resource in mono.queue_attribution.values():
            assert set(by_resource) == {"cpu", "disk", "network"}

    def test_overload_sheds_deterministically(self):
        def run_once():
            ctx = make_ctx(scheduling_policy="fair")
            server = JobServer(
                ctx, admission=AdmissionController(max_queued_jobs=1),
                max_concurrent_jobs=1, seed=9)
            server.add_workload("t", small_wc(ctx),
                                TraceArrivals([0.0, 0.1, 0.2, 0.3, 5.0]))
            return server.run()

        first, second = run_once(), run_once()
        stats = first.tenant("t")
        assert stats.shed > 0
        assert stats.completed + stats.shed == 5
        assert first.format() == second.format()
        shed = [r for r in first.records if r.outcome == "shed"]
        assert all("queue full" in r.detail for r in shed)

    def test_weighted_fair_credits_service(self):
        server, report = self._serve_once("monospark")
        assert report.total_completed > 0
        assert server.scheduler.virtual_time("interactive") > 0
        # Weight 2 tenant accrues virtual time at half rate per second
        # of service.
        interactive = report.tenant("interactive")
        assert interactive.completed > 0

    def test_server_runs_once(self):
        ctx = make_ctx()
        server = JobServer(ctx)
        server.submit(small_wc(ctx).instantiate(ctx))
        server.run()
        with pytest.raises(SimulationError):
            server.run()

    def test_invalid_configs_rejected(self):
        ctx = make_ctx()
        with pytest.raises(ConfigError):
            JobServer(ctx, max_concurrent_jobs=0)
        with pytest.raises(ConfigError):
            JobServer(ctx).add_tenant("t", weight=0.0)
        with pytest.raises(ConfigError):
            JobServer(ctx).add_tenant("t", slo_s=-1.0)


class TestSloAccounting:
    @staticmethod
    def _record(**kw):
        from repro.metrics.events import ServeRecord
        base = dict(tenant="t", template="wc", arrival=0.0, job_id=1,
                    dispatched=1.0, completed=3.0, outcome="completed")
        base.update(kw)
        return ServeRecord(**base)

    def test_serve_record_derived_times(self):
        record = self._record()
        assert record.queue_delay_s == 1.0
        assert record.service_s == 2.0
        assert record.latency_s == 3.0
        assert record.slo_met is None
        assert self._record(slo_s=3.0).slo_met is True
        assert self._record(slo_s=2.9).slo_met is False
        assert self._record(slo_s=10.0, outcome="failed").slo_met is False

    def test_attainment_counts_shed_against_the_tenant(self):
        from repro.serve.slo import _tenant_stats
        records = [
            self._record(slo_s=5.0),
            self._record(slo_s=5.0, completed=20.0),   # missed
            self._record(slo_s=5.0, outcome="shed", job_id=-1,
                         dispatched=float("nan"),
                         completed=float("nan")),
        ]
        stats = _tenant_stats("t", records)
        assert stats.submitted == 3
        assert stats.completed == 2
        assert stats.shed == 1
        assert stats.goodput == 1
        assert stats.attainment == pytest.approx(1.0 / 3.0)

    def test_percentiles_over_completed_latencies(self):
        from repro.serve.slo import _tenant_stats
        records = [self._record(completed=float(c)) for c in (1, 2, 3, 4)]
        stats = _tenant_stats("t", records)
        assert stats.p50_s == pytest.approx(2.5)
        assert stats.p99_s == pytest.approx(3.97)
        assert stats.mean_queue_delay_s == pytest.approx(1.0)
