"""Differential property tests: both engines compute identical results.

Hypothesis builds random small pipelines from a safe operator vocabulary
and random key-value data; the Spark-style engine and MonoSpark must
produce exactly the same records (the paper's API-compatibility claim,
§4, for arbitrary jobs rather than hand-picked ones), and MonoSpark's
monotask byte accounting must match the hardware.
"""

from hypothesis import given, settings, strategies as st

from repro.api import AnalyticsContext
from repro.cluster import hdd_cluster
from repro.metrics.events import DISK

def _small_hash(value):
    """Stable small bucket for arbitrary (nested) hashable values."""
    if isinstance(value, int):
        return value % 5
    return sum(_small_hash(item) for item in value) % 5 if value else 0


kv_records = st.lists(
    st.tuples(st.integers(0, 9), st.integers(-50, 50)),
    min_size=0, max_size=30)

#: (name, rdd -> rdd) operator vocabulary. Names keep hypothesis'
#: shrinking output readable.
OPS = {
    "inc_values": lambda rdd: rdd.map_values(
        lambda v: v + 1 if isinstance(v, int) else v),
    "filter_even": lambda rdd: rdd.filter(
        lambda kv: _small_hash(kv[1]) % 2 == 0),
    "swap": lambda rdd: rdd.map(lambda kv: (_small_hash(kv[1]), kv[0])),
    "dup": lambda rdd: rdd.flat_map(lambda kv: [kv, kv]),
    "reduce": lambda rdd: rdd.reduce_by_key(lambda a, b: a + b,
                                            num_partitions=3),
    # Values stay hashable (tuple) so downstream shuffles can key them,
    # the same constraint real Spark keys have.
    "group_sorted": lambda rdd: rdd.group_by_key(num_partitions=2)
        .map_values(lambda vs: tuple(sorted(vs))),
    "distinct": lambda rdd: rdd.distinct(num_partitions=2),
}

pipelines = st.lists(st.sampled_from(sorted(OPS)), min_size=1, max_size=4)


def run_pipeline(engine, records, op_names, partitions):
    ctx = AnalyticsContext(hdd_cluster(num_machines=2), engine=engine)
    rdd = ctx.parallelize(records, num_partitions=partitions)
    for name in op_names:
        rdd = OPS[name](rdd)
    return ctx, sorted(map(repr, rdd.collect()))


class TestEngineEquivalence:
    @given(kv_records, pipelines, st.integers(1, 4))
    @settings(max_examples=25, deadline=None)
    def test_engines_agree_on_random_pipelines(self, records, op_names,
                                               partitions):
        _, spark_result = run_pipeline("spark", records, op_names,
                                       partitions)
        _, mono_result = run_pipeline("monospark", records, op_names,
                                      partitions)
        assert spark_result == mono_result

    @given(kv_records, pipelines, st.integers(1, 3))
    @settings(max_examples=10, deadline=None)
    def test_monotask_bytes_match_hardware(self, records, op_names,
                                           partitions):
        ctx, _ = run_pipeline("monospark", records, op_names, partitions)
        reported = sum(m.nbytes for m in ctx.metrics.monotasks
                       if m.resource == DISK)
        served = sum(d.bytes_read + d.bytes_written
                     for machine in ctx.cluster.machines
                     for d in machine.disks)
        assert abs(reported - served) <= max(1.0, served * 1e-9)

    @given(kv_records, pipelines)
    @settings(max_examples=10, deadline=None)
    def test_runs_are_deterministic(self, records, op_names):
        ctx1, result1 = run_pipeline("monospark", records, op_names, 2)
        ctx2, result2 = run_pipeline("monospark", records, op_names, 2)
        assert result1 == result2
        assert (ctx1.last_result.duration == ctx2.last_result.duration)
