"""Engine-level fault recovery: the answer survives the failure.

Both engines must compute the fault-free result under injected machine
crashes -- attempts retry, lost map output is re-executed from lineage,
and first-finisher-wins keeps outputs exactly-once.  The same workload
with the same FaultPlan and seed must also produce a byte-identical
metrics event stream: failures are as reproducible here as performance.
"""

import dataclasses
import json
import random

import pytest

from repro.api import AnalyticsContext
from repro.cluster import hdd_cluster
from repro.config import MB
from repro.datamodel import Partition
from repro.errors import PlanError
from repro.faults import (DiskFault, FaultInjector, FaultPlan, MachineCrash,
                          RecoveryPolicy, TransientSlowdown, random_plan)
from repro.simulator.rng import RngStreams

ENGINES = ["spark", "monospark"]

LINES = ["the quick brown fox jumps over the lazy dog",
         "monotask spark cluster disk network cpu",
         "the fox the dog the cluster"] * 8


def dfs_sort_cluster(machines=4, blocks=8, records_per_block=40, seed=1):
    cluster = hdd_cluster(num_machines=machines)
    rng = random.Random(seed)
    payloads = []
    for b in range(blocks):
        records = [(rng.randint(0, 999), f"v{b}")
                   for _ in range(records_per_block)]
        payloads.append(Partition.from_records(
            records, record_count=records_per_block, data_bytes=16 * MB))
    cluster.dfs.create_file("input", payloads, [16 * MB] * blocks)
    return cluster


def word_count(ctx):
    out = (ctx.parallelize(LINES, num_partitions=8)
           .flat_map(str.split)
           .map(lambda w: (w, 1))
           .reduce_by_key(lambda a, b: a + b, num_partitions=4)
           .collect())
    return dict(out)


def sort_records(ctx):
    return ctx.text_file("input").sort_by_key(num_partitions=4).collect()


def crash_plan(ctx, at, machine_id=1, restart_after=None):
    plan = FaultPlan([MachineCrash(at=at, machine_id=machine_id,
                                   restart_after=restart_after)])
    FaultInjector(ctx.engine, plan).start()


class TestFaultPlanValidation:
    def test_rejects_nonfinite_time(self):
        with pytest.raises(PlanError):
            FaultPlan([MachineCrash(at=float("inf"), machine_id=0)])
        with pytest.raises(PlanError):
            FaultPlan([MachineCrash(at=float("nan"), machine_id=0)])
        with pytest.raises(PlanError):
            FaultPlan([DiskFault(at=-1.0, machine_id=0, disk_index=0)])

    def test_rejects_bad_restart_and_duration(self):
        with pytest.raises(PlanError):
            FaultPlan([MachineCrash(at=1.0, machine_id=0, restart_after=0.0)])
        with pytest.raises(PlanError):
            FaultPlan([TransientSlowdown(at=1.0, machine_id=0, duration=-5.0)])
        with pytest.raises(PlanError):
            FaultPlan([TransientSlowdown(at=1.0, machine_id=0, duration=5.0,
                                         cpu_factor=0.5)])

    def test_faults_sorted_by_time(self):
        plan = FaultPlan([DiskFault(at=9.0, machine_id=0, disk_index=0),
                          MachineCrash(at=3.0, machine_id=1)])
        assert [fault.at for fault in plan] == [3.0, 9.0]

    def test_random_plan_is_seed_deterministic(self):
        first = random_plan(RngStreams(7), range(8), horizon_s=100.0,
                            num_faults=3)
        second = random_plan(RngStreams(7), range(8), horizon_s=100.0,
                             num_faults=3)
        assert list(first) == list(second)
        other = random_plan(RngStreams(8), range(8), horizon_s=100.0,
                            num_faults=3)
        assert list(first) != list(other)


class TestRecoveryPolicy:
    def test_backoff_grows_and_caps(self):
        policy = RecoveryPolicy(backoff_base_s=0.5, backoff_factor=2.0,
                                backoff_max_s=3.0)
        assert policy.backoff_s(1) == 0.5
        assert policy.backoff_s(2) == 1.0
        assert policy.backoff_s(3) == 2.0
        assert policy.backoff_s(4) == 3.0  # capped
        assert policy.backoff_s(10) == 3.0


@pytest.mark.parametrize("engine", ENGINES)
class TestCrashRecovery:
    def test_word_count_survives_mid_job_crash(self, engine):
        expected = word_count(
            AnalyticsContext(hdd_cluster(num_machines=4), engine=engine))
        baseline = AnalyticsContext(hdd_cluster(num_machines=4),
                                    engine=engine)
        duration = (word_count(baseline), baseline.last_result.duration)[1]

        ctx = AnalyticsContext(hdd_cluster(num_machines=4), engine=engine)
        crash_plan(ctx, at=duration * 0.4)
        assert word_count(ctx) == expected
        attempts = ctx.metrics.attempts_for_job(ctx.last_result.job_id)
        assert any(a.outcome != "success" for a in attempts)
        assert ctx.metrics.retry_count() > 0

    def test_sort_survives_crash_with_restart(self, engine):
        expected = sorted(sort_records(
            AnalyticsContext(dfs_sort_cluster(), engine=engine)))
        baseline = AnalyticsContext(dfs_sort_cluster(), engine=engine)
        records = sort_records(baseline)
        assert sorted(records) == expected
        duration = baseline.last_result.duration

        ctx = AnalyticsContext(dfs_sort_cluster(), engine=engine)
        crash_plan(ctx, at=duration * 0.5, restart_after=duration * 0.5)
        crashed = sort_records(ctx)
        assert sorted(crashed) == expected
        assert [fault.kind for fault in ctx.metrics.faults] == \
            ["machine-crash", "machine-restart"]

    def test_no_duplicate_outputs_from_retries(self, engine):
        # Exactly-once commits: retried/killed attempts must not add
        # their records a second time.
        baseline = AnalyticsContext(hdd_cluster(num_machines=4),
                                    engine=engine)
        expected = word_count(baseline)
        ctx = AnalyticsContext(hdd_cluster(num_machines=4), engine=engine)
        crash_plan(ctx, at=baseline.last_result.duration * 0.6)
        out = (ctx.parallelize(LINES, num_partitions=8)
               .flat_map(str.split)
               .map(lambda w: (w, 1))
               .reduce_by_key(lambda a, b: a + b, num_partitions=4)
               .collect())
        assert len(out) == len(expected)  # one pair per distinct word
        assert dict(out) == expected

    def test_event_queue_drains_after_faulty_run(self, engine):
        baseline = AnalyticsContext(dfs_sort_cluster(), engine=engine)
        sort_records(baseline)
        ctx = AnalyticsContext(dfs_sort_cluster(), engine=engine)
        crash_plan(ctx, at=baseline.last_result.duration * 0.4,
                   restart_after=2.0)
        sort_records(ctx)
        env = ctx.cluster.env
        env.run()  # drain stragglers (restart timers etc.)
        assert env.queue_size == 0


def fault_trace(metrics):
    """The fault-relevant event streams, serialized byte-stably."""
    return json.dumps({
        "tasks": [dataclasses.astuple(r) for r in metrics.tasks],
        "attempts": [dataclasses.astuple(r) for r in metrics.attempts],
        "faults": [dataclasses.astuple(r) for r in metrics.faults],
        "speculations": [dataclasses.astuple(r)
                         for r in metrics.speculations],
    })


@pytest.mark.parametrize("engine", ENGINES)
class TestDeterminismUnderFaults:
    def test_same_plan_same_seed_identical_trace(self, engine):
        baseline = AnalyticsContext(dfs_sort_cluster(seed=3), engine=engine)
        sort_records(baseline)
        crash_at = baseline.last_result.duration * 0.5

        def run_once():
            ctx = AnalyticsContext(dfs_sort_cluster(seed=3), engine=engine)
            crash_plan(ctx, at=crash_at, restart_after=crash_at)
            records = sort_records(ctx)
            return records, fault_trace(ctx.metrics)

        first_records, first_trace = run_once()
        second_records, second_trace = run_once()
        assert first_records == second_records
        assert first_trace == second_trace
        assert "machine-crash" in first_trace


@pytest.mark.parametrize("engine", ENGINES)
class TestLineageRecovery:
    def test_crash_after_map_stage_reruns_maps(self, engine):
        # Crash once the map stage has finished: reducers find the dead
        # machine's shuffle output missing, fetch-fail, and the engine
        # re-runs just those maps from lineage.
        baseline = AnalyticsContext(dfs_sort_cluster(), engine=engine)
        expected = sorted(sort_records(baseline))
        stages = baseline.metrics.stage_records(
            baseline.last_result.job_id)
        map_end = min(stage.end for stage in stages)

        ctx = AnalyticsContext(dfs_sort_cluster(), engine=engine)
        crash_plan(ctx, at=map_end * 1.02, restart_after=5.0)
        records = sort_records(ctx)
        assert sorted(records) == expected
        outcomes = ctx.metrics.attempt_outcome_counts(
            ctx.last_result.job_id)
        assert outcomes.get("fetch-failed", 0) > 0
        # Lineage re-ran maps: more map attempts than map tasks.
        job_id = ctx.last_result.job_id
        map_stage = max(a.stage_id for a in ctx.metrics.attempts
                        if a.job_id == job_id)
        map_attempts = [a for a in ctx.metrics.attempts
                        if a.job_id == job_id and a.stage_id == map_stage]
        successes = [a for a in map_attempts if a.outcome == "success"]
        assert len(successes) > len({a.task_index for a in map_attempts})


@pytest.mark.parametrize("engine", ENGINES)
class TestSpeculation:
    def test_straggler_gets_speculative_copy(self, engine):
        cluster = dfs_sort_cluster()
        cluster.degrade_machine(1, cpu_factor=0.05, disk_factor=0.05)
        policy = RecoveryPolicy(speculation=True,
                                speculation_interval_s=0.05,
                                speculation_multiplier=1.5)
        ctx = AnalyticsContext(cluster, engine=engine, recovery=policy)
        expected = sorted(sort_records(
            AnalyticsContext(dfs_sort_cluster(), engine=engine)))
        records = sort_records(ctx)
        assert sorted(records) == expected
        assert len(ctx.metrics.speculations) >= 1
        attempts = ctx.metrics.attempts_for_job(ctx.last_result.job_id)
        speculative = [a for a in attempts if a.speculative]
        assert speculative
        # The losing attempt of each race was killed, not failed.
        assert all(a.outcome in ("success", "killed")
                   for a in speculative)
