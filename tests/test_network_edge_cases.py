"""Extra edge-case tests for the rewritten water-filling network."""

import pytest

from repro.config import MB
from repro.simulator import Environment, Network


def make(env, machines=4, bw=100 * MB):
    net = Network(env)
    for machine in range(machines):
        net.register_machine(machine, up_bps=bw, down_bps=bw)
    return net


class TestWaterFillingEdgeCases:
    def test_incast_many_to_one(self):
        env = Environment()
        net = make(env, machines=9)
        flows = [net.transfer(src, 0, 10 * MB) for src in range(1, 9)]
        env.run(until=env.all_of(flows))
        # 80 MB into a 100 MB/s downlink.
        assert env.now == pytest.approx(0.8, rel=0.02)

    def test_outcast_one_to_many(self):
        env = Environment()
        net = make(env, machines=9)
        flows = [net.transfer(0, dst, 10 * MB) for dst in range(1, 9)]
        env.run(until=env.all_of(flows))
        assert env.now == pytest.approx(0.8, rel=0.02)

    def test_parallel_flows_same_pair(self):
        env = Environment()
        net = make(env)
        flows = [net.transfer(0, 1, 25 * MB) for _ in range(4)]
        env.run(until=env.all_of(flows))
        assert env.now == pytest.approx(1.0, rel=0.02)

    def test_bidirectional_flows_use_full_duplex(self):
        env = Environment()
        net = make(env)
        done = env.all_of([
            net.transfer(0, 1, 100 * MB),
            net.transfer(1, 0, 100 * MB),
        ])
        env.run(until=done)
        # Full duplex: both directions run at line rate concurrently.
        assert env.now == pytest.approx(1.0, rel=0.02)

    def test_heterogeneous_flow_sizes_rebalance_repeatedly(self):
        env = Environment()
        net = make(env)
        finish = {}

        def track(tag, src, dst, nbytes):
            yield net.transfer(src, dst, nbytes)
            finish[tag] = env.now

        for tag, nbytes in enumerate((10 * MB, 20 * MB, 40 * MB)):
            env.process(track(tag, tag + 1, 0, nbytes))
        env.run()
        # Shared 100 MB/s downlink, max-min shares; total 70 MB.
        assert finish[0] < finish[1] < finish[2]
        assert finish[2] == pytest.approx(0.7, rel=0.03)

    def test_snapshot_reflects_mid_flight_rates(self):
        env = Environment()
        net = make(env)
        net.transfer(0, 1, 500 * MB, label="solo")
        rates = net.rates_snapshot()
        assert rates["solo"] == pytest.approx(100 * MB)
        net.transfer(2, 1, 500 * MB, label="rival")
        rates = net.rates_snapshot()
        assert rates["solo"] == pytest.approx(50 * MB)
        assert rates["rival"] == pytest.approx(50 * MB)

    def test_conservation_under_churn(self):
        """Total delivered bytes equal total requested bytes."""
        env = Environment()
        net = make(env, machines=6)
        import random
        rng = random.Random(3)
        flows = []
        total = 0.0

        def launch(delay, src, dst, nbytes):
            yield env.timeout(delay)
            yield net.transfer(src, dst, nbytes)

        for _ in range(40):
            src, dst = rng.sample(range(6), 2)
            nbytes = rng.randint(1, 30) * MB
            total += nbytes
            flows.append(env.process(
                launch(rng.random(), src, dst, nbytes)))
        env.run(until=env.all_of(flows))
        assert net.bytes_transferred == pytest.approx(total)
        assert net.active_flows == 0
