"""Property-based tests (hypothesis) on core invariants."""

import math

from hypothesis import given, settings, strategies as st

from repro.api.ops import (CombineByKeyOp, FilterOp, FlatMapOp, MapOp,
                           SortOp, run_chain)
from repro.api.partitioners import HashPartitioner, RangePartitioner
from repro.config import MB, DiskSpec
from repro.datamodel import Partition
from repro.metrics.utilization import percentile
from repro.simulator import BusyTracker, Disk, Environment, Network

keys = st.one_of(st.integers(-10**6, 10**6), st.text(max_size=8))
records = st.lists(st.tuples(keys, st.integers(-100, 100)), max_size=60)


class TestEventOrdering:
    @given(st.lists(st.floats(min_value=0.0, max_value=1e6,
                              allow_nan=False), min_size=1, max_size=40))
    def test_events_fire_in_nondecreasing_time_order(self, delays):
        env = Environment()
        fired = []
        for delay in delays:
            env.timeout(delay).add_callback(lambda e, d=delay: fired.append(
                env.now))
        env.run()
        assert fired == sorted(fired)
        assert len(fired) == len(delays)

    @given(st.lists(st.floats(min_value=0.001, max_value=100.0,
                              allow_nan=False), min_size=1, max_size=20))
    def test_clock_ends_at_latest_event(self, delays):
        env = Environment()
        for delay in delays:
            env.timeout(delay)
        env.run()
        assert env.now == max(delays)


class TestPartitionInvariants:
    @given(records)
    def test_merge_preserves_totals(self, rows):
        half = len(rows) // 2
        a = Partition.from_records(rows[:half])
        b = Partition.from_records(rows[half:])
        merged = Partition.merge([a, b])
        assert merged.record_count == a.record_count + b.record_count
        assert merged.data_bytes == a.data_bytes + b.data_bytes
        assert merged.records == rows

    @given(records, st.integers(1, 8))
    def test_split_proportionally_conserves_mass(self, rows, buckets):
        partition = Partition.from_records(rows, record_count=1000.0,
                                           data_bytes=5000.0)
        split = HashPartitioner(buckets).split(rows)
        parts = partition.split_proportionally(split)
        assert sum(p.record_count for p in parts) == math.isclose(
            1000.0, sum(p.record_count for p in parts)) or math.isclose(
            sum(p.record_count for p in parts), 1000.0)
        assert math.isclose(sum(p.data_bytes for p in parts), 5000.0)
        flattened = [r for p in parts for r in p.records]
        assert sorted(map(repr, flattened)) == sorted(map(repr, rows))

    @given(records, st.integers(1, 8))
    def test_split_adoption_conserves_and_adopts(self, rows, buckets):
        """The shuffle writer's ``own_records=True`` path: buckets are
        adopted by identity (no copy) with the same byte conservation
        as the copying path."""
        partition = Partition.from_records(rows, record_count=700.0,
                                           data_bytes=3100.0)
        split = HashPartitioner(buckets).split(rows)
        fresh = [list(bucket) for bucket in split]
        parts = partition.split_proportionally(fresh, own_records=True)
        assert all(part.records is bucket
                   for part, bucket in zip(parts, fresh))
        assert math.isclose(sum(p.record_count for p in parts), 700.0)
        assert math.isclose(sum(p.data_bytes for p in parts), 3100.0)
        copied = partition.split_proportionally(split, own_records=False)
        assert [(p.record_count, p.data_bytes) for p in parts] \
            == [(p.record_count, p.data_bytes) for p in copied]

    @given(st.integers(0, 10**6), st.integers(1, 16),
           st.integers(0, 120))
    def test_seeded_plan_split_conserves_bytes(self, seed, buckets, n):
        """Byte conservation over seeded shuffle plans: a deterministic
        record stream split exactly as the shuffle writer splits it
        (hash partition then proportional adoption) loses nothing."""
        import random
        rng = random.Random(seed)
        rows = [(f"k{rng.randrange(37)}", rng.randrange(1000))
                for _ in range(n)]
        partition = Partition.from_records(rows)
        split = HashPartitioner(buckets).split(rows)
        parts = partition.split_proportionally(split, own_records=True)
        assert math.isclose(sum(p.record_count for p in parts),
                            partition.record_count)
        assert math.isclose(sum(p.data_bytes for p in parts),
                            partition.data_bytes)
        assert sum(len(p.records) for p in parts) == len(rows)
        # Empty buckets carry no modeled mass unless everything is empty.
        if rows:
            for part in parts:
                if not part.records:
                    assert part.record_count == 0.0
                    assert part.data_bytes == 0.0


class TestPartitionerInvariants:
    @given(records, st.integers(1, 16))
    def test_hash_partitioner_total_and_range(self, rows, n):
        buckets = HashPartitioner(n).split(rows)
        assert len(buckets) == n
        assert sum(len(b) for b in buckets) == len(rows)

    @given(st.lists(st.integers(-1000, 1000), min_size=1, max_size=50),
           st.integers(1, 8))
    def test_range_partitioner_orders_buckets(self, sample, n):
        partitioner = RangePartitioner.from_sample(sample, n)
        rows = [(k, None) for k in sample]
        buckets = partitioner.split(rows)
        flat = []
        for bucket in buckets:
            flat.extend(sorted(k for k, _ in bucket))
        assert flat == sorted(sample)


class TestOpInvariants:
    @given(records)
    def test_filter_never_grows(self, rows):
        out = FilterOp(lambda kv: kv[1] > 0).transform(
            Partition.from_records(rows))
        assert len(out.records) <= len(rows)
        assert out.record_count <= len(rows)

    @given(records)
    def test_sort_op_is_permutation(self, rows):
        out = SortOp(key_fn=lambda kv: repr(kv[0])).apply(rows)
        assert sorted(map(repr, out)) == sorted(map(repr, rows))

    @given(records)
    def test_combine_by_key_sums_match(self, rows):
        combined = CombineByKeyOp(lambda a, b: a + b).apply(rows)
        assert sum(v for _, v in combined) == sum(v for _, v in rows)
        assert len({k for k, _ in combined}) == len(combined)

    @given(records)
    def test_chain_cpu_nonnegative(self, rows):
        chain = [MapOp(lambda kv: kv), FilterOp(lambda kv: True)]
        _, cpu = run_chain(Partition.from_records(rows), chain)
        assert cpu >= 0.0


class TestDiskInvariants:
    @given(st.lists(st.floats(min_value=1.0, max_value=64.0), min_size=1,
                    max_size=8))
    @settings(deadline=None)
    def test_hdd_time_at_least_transfer_time(self, sizes_mb):
        env = Environment()
        disk = Disk(env, DiskSpec(kind="hdd", throughput_bps=100 * MB,
                                  seek_time_s=0.005))
        done = env.all_of([disk.read(mb * MB) for mb in sizes_mb])
        env.run(until=done)
        floor = sum(mb * MB for mb in sizes_mb) / (100 * MB)
        assert env.now >= floor - 1e-9
        assert disk.bytes_read == sum(mb * MB for mb in sizes_mb)

    @given(st.integers(1, 10))
    @settings(deadline=None)
    def test_more_streams_never_faster(self, streams):
        def run(n):
            env = Environment()
            disk = Disk(env, DiskSpec(kind="hdd", throughput_bps=100 * MB,
                                      seek_time_s=0.005))
            env.run(until=env.all_of(
                [disk.read(32 * MB) for _ in range(n)]))
            return env.now / n  # time per stream's worth of data
        assert run(streams) >= run(1) - 1e-9


class TestNetworkInvariants:
    @given(st.lists(st.tuples(st.integers(0, 3), st.integers(0, 3),
                              st.floats(min_value=1.0, max_value=50.0)),
                    min_size=1, max_size=10))
    @settings(deadline=None)
    def test_transfers_respect_aggregate_capacity(self, flows):
        env = Environment()
        net = Network(env)
        for machine in range(4):
            net.register_machine(machine, up_bps=100 * MB, down_bps=100 * MB)
        events = [net.transfer(src, dst, mb * MB)
                  for src, dst, mb in flows]
        env.run(until=env.all_of(events))
        remote_bytes = sum(mb * MB for src, dst, mb in flows if src != dst)
        # No link exceeds capacity: total time >= busiest link's demand.
        for machine in range(4):
            inbound = sum(mb * MB for src, dst, mb in flows
                          if dst == machine and src != dst)
            assert env.now >= inbound / (100 * MB) - 1e-6
        assert net.bytes_transferred == sum(mb * MB for _, _, mb in flows)


class TestUtilizationInvariants:
    @given(st.lists(st.tuples(st.floats(0.1, 10.0), st.integers(0, 4)),
                    min_size=1, max_size=20))
    def test_utilization_bounded(self, changes):
        env = Environment()
        tracker = BusyTracker(env, units=4)

        def proc():
            for delay, busy in changes:
                tracker.set_busy(busy)
                yield env.timeout(delay)

        env.run(until=env.process(proc()))
        util = tracker.utilization()
        assert 0.0 <= util <= 1.0 + 1e-9

    @given(st.lists(st.floats(0.0, 1.0), min_size=1, max_size=30),
           st.floats(0.0, 100.0))
    def test_percentile_within_bounds(self, values, q):
        result = percentile(values, q)
        assert min(values) - 1e-12 <= result <= max(values) + 1e-12
