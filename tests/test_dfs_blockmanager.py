"""Unit tests for the DFS block store and the cached-block manager."""

import pytest

from repro.cluster import Cluster, hdd_cluster
from repro.cluster.blockmanager import BlockManager
from repro.cluster.hdfs import Dfs
from repro.config import MB
from repro.datamodel import DESERIALIZED, Partition
from repro.errors import ExecutionError, SimulationError


class TestDfs:
    def test_create_file_places_replicas(self):
        dfs = Dfs(num_machines=5, disks_per_machine=2, replication=3)
        f = dfs.create_file("data", [None] * 4, [64 * MB] * 4)
        assert len(f.blocks) == 4
        for block in f.blocks:
            assert len(block.replicas) == 3
            assert len(set(block.machines())) == 3

    def test_replication_capped_by_cluster_size(self):
        dfs = Dfs(num_machines=2, disks_per_machine=1, replication=3)
        f = dfs.create_file("data", [None], [1])
        assert len(f.blocks[0].replicas) == 2

    def test_blocks_spread_over_machines(self):
        dfs = Dfs(num_machines=4, disks_per_machine=2, replication=1)
        f = dfs.create_file("data", [None] * 8, [1] * 8)
        first_replicas = [block.replicas[0][0] for block in f.blocks]
        assert set(first_replicas) == {0, 1, 2, 3}

    def test_disk_on_and_missing_replica(self):
        dfs = Dfs(num_machines=3, disks_per_machine=2, replication=1)
        f = dfs.create_file("data", [None], [1])
        block = f.blocks[0]
        machine, disk = block.replicas[0]
        assert block.disk_on(machine) == disk
        with pytest.raises(ExecutionError):
            block.disk_on(99)

    def test_duplicate_file_rejected(self):
        dfs = Dfs(num_machines=1, disks_per_machine=1)
        dfs.create_file("x", [], [])
        with pytest.raises(SimulationError):
            dfs.create_file("x", [], [])

    def test_output_file_appending(self):
        dfs = Dfs(num_machines=2, disks_per_machine=2)
        dfs.open_output_file("out")
        dfs.append_output_block("out", 10 * MB, writer_machine=1,
                                writer_disk=0)
        f = dfs.get_file("out")
        assert f.nbytes == 10 * MB
        assert f.blocks[0].replicas == [(1, 0)]

    def test_missing_file_rejected(self):
        dfs = Dfs(num_machines=1, disks_per_machine=1)
        with pytest.raises(ExecutionError):
            dfs.get_file("nope")
        with pytest.raises(ExecutionError):
            dfs.append_output_block("nope", 1, 0, 0)

    def test_exists_and_listing(self):
        dfs = Dfs(num_machines=1, disks_per_machine=1)
        dfs.create_file("b", [], [])
        dfs.create_file("a", [], [])
        assert dfs.exists("a")
        assert not dfs.exists("c")
        assert dfs.files() == ["a", "b"]


class TestBlockManager:
    def setup_method(self):
        self.cluster = hdd_cluster(num_machines=3)
        self.bm = BlockManager(self.cluster)
        self.part = Partition.from_records([1, 2], record_count=2,
                                           data_bytes=10 * MB)

    def test_put_get_location(self):
        self.bm.put(5, 0, machine_id=1, partition=self.part,
                    fmt=DESERIALIZED)
        assert self.bm.has(5, 0)
        assert self.bm.location(5, 0) == 1
        machine_id, part, fmt = self.bm.get(5, 0)
        assert machine_id == 1
        assert part.records == [1, 2]

    def test_memory_accounting(self):
        before = self.cluster.machine(1).memory.used
        self.bm.put(5, 0, 1, self.part, DESERIALIZED)
        assert self.cluster.machine(1).memory.used == before + 10 * MB
        self.bm.evict_rdd(5)
        assert self.cluster.machine(1).memory.used == before

    def test_replace_releases_old(self):
        self.bm.put(5, 0, 1, self.part, DESERIALIZED)
        self.bm.put(5, 0, 2, self.part, DESERIALIZED)
        assert self.cluster.machine(1).memory.used == 0
        assert self.bm.location(5, 0) == 2

    def test_missing_block_rejected(self):
        with pytest.raises(ExecutionError):
            self.bm.get(1, 0)
        assert self.bm.location(1, 0) is None

    def test_cached_bytes(self):
        self.bm.put(5, 0, 0, self.part, DESERIALIZED)
        self.bm.put(5, 1, 1, self.part, DESERIALIZED)
        assert self.bm.cached_bytes() == 20 * MB
