"""Tests for the streaming observability plane (``repro.obs``)."""

import io
import json

import pytest

from repro.api.context import AnalyticsContext
from repro.cluster import hdd_cluster
from repro.errors import ObsError
from repro.faults import FaultInjector, fail_slow_plan
from repro.health import HealthMonitor, HealthPolicy
from repro.metrics.collector import MetricsCollector
from repro.metrics.events import (AlertEventRecord, FaultEventRecord,
                                  HealthEventRecord)
from repro.obs import (AbsenceRule, AlertEngine, BurnRateRule, EventJournal,
                       Exemplar, ExemplarStore, JsonlJournalSink,
                       ModelDriftDetector, ObservabilityPlane, ThresholdRule,
                       WORST_JOB_METRIC, format_labels, severity_of)
from repro.obs.bench import ObsWorkload, _fail_slow, _fault_free
from repro.serve import JobServer, TraceArrivals, wordcount_template
from repro.trace.telemetry import TelemetryRegistry


def make_engine(**series):
    """An AlertEngine over a registry of mutable scalar gauges.

    ``series`` maps metric name -> initial value; returns (engine,
    registry, values) where mutating ``values[name]`` changes what the
    next ``registry.sample`` records.
    """
    registry = TelemetryRegistry()
    values = dict(series)
    for name in series:
        registry.gauge(name, f"test metric {name}",
                       lambda n=name: values[n])
    return AlertEngine(registry), registry, values


class TestRules:
    def test_validation_rejects_bad_rules(self):
        with pytest.raises(ObsError, match="non-empty name"):
            ThresholdRule(name="", metric="m", op=">", threshold=1.0)
        with pytest.raises(ObsError, match="unknown operator"):
            ThresholdRule(name="r", metric="m", op="!=", threshold=1.0)
        with pytest.raises(ObsError, match="window_s"):
            ThresholdRule(name="r", metric="m", op=">", threshold=1.0,
                          window_s=0.0)
        with pytest.raises(ObsError, match="unknown severity"):
            ThresholdRule(name="r", metric="m", op=">", threshold=1.0,
                          severity="page")
        with pytest.raises(ObsError, match="for_s"):
            AbsenceRule(name="r", metric="m", for_s=-1.0)
        with pytest.raises(ObsError, match="stale_after_s"):
            AbsenceRule(name="r", metric="m", stale_after_s=0.0)
        with pytest.raises(ObsError, match="objective"):
            BurnRateRule(name="r", good_metric="g", total_metric="t",
                         objective=1.0)
        with pytest.raises(ObsError, match="burn thresholds"):
            BurnRateRule(name="r", good_metric="g", total_metric="t",
                         windows=((5.0, 60.0),),
                         burn_thresholds=(14.4, 6.0))
        with pytest.raises(ObsError, match="short < long"):
            BurnRateRule(name="r", good_metric="g", total_metric="t",
                         windows=((60.0, 5.0),), burn_thresholds=(6.0,))

    def test_budget_and_duplicate_names(self):
        rule = BurnRateRule(name="b", good_metric="g", total_metric="t",
                            objective=0.99)
        assert rule.budget == pytest.approx(0.01)
        engine, _, _ = make_engine(m=0.0)
        engine.add_rule(ThresholdRule(name="r", metric="m", op=">",
                                      threshold=1.0))
        with pytest.raises(ObsError, match="already registered"):
            engine.add_rule(AbsenceRule(name="r", metric="m"))
        with pytest.raises(ObsError, match="unknown rule type"):
            engine.add_rule(object())


class TestAlertLifecycle:
    def test_immediate_fire_and_resolve(self):
        engine, registry, values = make_engine(m=0.0)
        engine.add_rule(ThresholdRule(name="hot", metric="m", op=">",
                                      threshold=5.0, window_s=10.0))
        registry.sample(0.0)
        assert engine.evaluate(0.0) == []
        values["m"] = 9.0
        registry.sample(1.0)
        (fired,) = engine.evaluate(1.0)
        assert (fired.kind, fired.rule, fired.at) == ("firing", "hot", 1.0)
        assert fired.value == 9.0
        assert engine.firing()[0].state == "firing"
        values["m"] = 1.0
        registry.sample(2.0)
        (resolved,) = engine.evaluate(2.0)
        assert resolved.kind == "resolved"
        assert resolved.severity == "info"  # only firing carries severity
        assert engine.firing() == [] and engine.history[0].rule == "hot"

    def test_for_s_hold_and_silent_pending_drop(self):
        engine, registry, values = make_engine(m=9.0)
        engine.add_rule(ThresholdRule(name="hot", metric="m", op=">",
                                      threshold=5.0, window_s=10.0,
                                      for_s=3.0))
        registry.sample(0.0)
        (pending,) = engine.evaluate(0.0)
        assert pending.kind == "pending"
        # Recovers before for_s elapses: dropped with no transition.
        values["m"] = 0.0
        registry.sample(1.0)
        assert engine.evaluate(1.0) == []
        assert engine.pending() == [] and engine.firing() == []
        # Holds past for_s: pending then firing, stamped at hold expiry.
        values["m"] = 9.0
        registry.sample(2.0)
        engine.evaluate(2.0)
        registry.sample(4.0)
        assert engine.evaluate(4.0) == []  # still holding
        registry.sample(5.0)
        (fired,) = engine.evaluate(5.0)
        assert (fired.kind, fired.at) == ("firing", 5.0)

    def test_per_series_dedup_by_labels(self):
        registry = TelemetryRegistry()
        depths = {0: 9.0, 1: 1.0}
        for machine in depths:
            registry.gauge("depth", "queue depth",
                           lambda m=machine: depths[m], machine=machine)
        engine = AlertEngine(registry)
        engine.add_rule(ThresholdRule(name="deep", metric="depth", op=">",
                                      threshold=5.0, window_s=10.0))
        registry.sample(0.0)
        (fired,) = engine.evaluate(0.0)
        assert fired.labels == "machine=0"
        # Re-evaluating does not re-fire the same (rule, labels) key.
        registry.sample(1.0)
        assert engine.evaluate(1.0) == []
        depths[1] = 20.0
        registry.sample(2.0)
        (second,) = engine.evaluate(2.0)
        assert second.labels == "machine=1"
        assert len(engine.firing()) == 2

    def test_absence_no_series_and_staleness(self):
        engine, registry, _ = make_engine(m=1.0)
        engine.add_rule(AbsenceRule(name="ghost", metric="never",
                                    stale_after_s=5.0))
        engine.add_rule(AbsenceRule(name="stale", metric="m",
                                    stale_after_s=5.0))
        registry.sample(0.0)
        # At t=4 nothing is stale (both ages are 4 < 5); at t=6 both the
        # never-registered watchdog and the stale series fire.
        assert engine.evaluate(4.0) == []
        transitions = engine.evaluate(6.0)
        assert [t.rule for t in transitions] == ["ghost", "stale"]
        assert transitions[0].labels == "metric=never"
        # Fresh samples resolve the staleness alert.
        registry.sample(7.0)
        resolved = engine.evaluate(7.0)
        assert [t.kind for t in resolved] == ["resolved"]
        assert resolved[0].rule == "stale"


class TestBurnRate:
    def make_slo_engine(self):
        registry = TelemetryRegistry()
        counts = {"good": 0.0, "total": 0.0}
        registry.counter("good", "good requests", lambda: counts["good"],
                         tenant="t0")
        registry.counter("total", "all requests", lambda: counts["total"],
                         tenant="t0")
        engine = AlertEngine(registry)
        engine.add_rule(BurnRateRule(
            name="burn", good_metric="good", total_metric="total",
            objective=0.9, windows=((5.0, 20.0),), burn_thresholds=(2.0,)))
        return engine, registry, counts

    def test_burn_requires_both_windows(self):
        engine, registry, counts = self.make_slo_engine()
        # 100% success for 20s: no burn.
        for t in range(21):
            counts["total"] += 1
            counts["good"] += 1
            registry.sample(float(t))
            assert engine.evaluate(float(t)) == []
        # Sudden 100% failure: burn 10x the 0.1 budget in the short
        # window, but the long window still dilutes below 2x until
        # enough errors accumulate -- then both agree and it fires.
        fired_at = None
        for t in range(21, 41):
            counts["total"] += 1
            registry.sample(float(t))
            transitions = engine.evaluate(float(t))
            if transitions:
                fired_at = (transitions[0].at, transitions[0].kind)
                break
        assert fired_at is not None and fired_at[1] == "firing"
        # Long window (20s) error rate must have reached 0.2 => at
        # least 4 of the last 20 requests failed before firing.
        assert fired_at[0] >= 24.0

    def test_burn_labels_name_the_tenant(self):
        engine, registry, counts = self.make_slo_engine()
        for t in range(10):
            counts["total"] += 1
            registry.sample(float(t))
        transitions = engine.evaluate(9.0)
        assert transitions and transitions[0].labels == "tenant=t0"


class TestExemplars:
    def test_lookup_prefers_exact_then_global(self):
        store = ExemplarStore(window_s=10.0)
        store.record("m", (("machine", "1"),),
                     Exemplar(t=1.0, value=3.0, trace_id="job-1",
                              span_id=10))
        store.record(WORST_JOB_METRIC, (),
                     Exemplar(t=2.0, value=9.0, trace_id="job-2",
                              span_id=20))
        hit = store.lookup("m", (("machine", "1"),), now=5.0)
        assert hit.trace_id == "job-1"
        # No per-series exemplar: falls back to the global worst-job.
        hit = store.lookup("m", (("machine", "2"),), now=5.0)
        assert hit.trace_id == "job-2"
        # Outside the window nothing resolves.
        assert store.lookup("m", (("machine", "1"),), now=50.0) is None

    def test_firing_alert_stamps_exemplar(self):
        registry = TelemetryRegistry()
        values = {"m": 9.0}
        registry.gauge("m", "x", lambda: values["m"])
        exemplars = ExemplarStore()
        exemplars.record("m", (), Exemplar(t=0.0, value=5.0,
                                           trace_id="job-7", span_id=77,
                                           detail="slow span"))
        engine = AlertEngine(registry, exemplars=exemplars)
        engine.add_rule(ThresholdRule(name="hot", metric="m", op=">",
                                      threshold=5.0, window_s=10.0))
        registry.sample(1.0)
        (fired,) = engine.evaluate(1.0)
        assert (fired.trace_id, fired.span_id) == ("job-7", 77)
        assert "worst contributor: slow span" in fired.detail


class TestJournal:
    def test_severity_mapping(self):
        crash = FaultEventRecord(kind="machine-crash", machine_id=1, at=1.0)
        degrade = FaultEventRecord(kind="net-degradation", machine_id=1,
                                   at=1.0)
        assert severity_of("fault", crash) == "critical"
        assert severity_of("fault", degrade) == "warning"
        exclude = HealthEventRecord(kind="exclude", machine_id=1, at=2.0)
        reinstate = HealthEventRecord(kind="reinstate", machine_id=1,
                                      at=3.0)
        assert severity_of("health", exclude) == "critical"
        assert severity_of("health", reinstate) == "info"
        firing = AlertEventRecord(kind="firing", rule="r", at=4.0,
                                  severity="critical")
        resolved = AlertEventRecord(kind="resolved", rule="r", at=5.0,
                                    severity="critical")
        assert severity_of("alert", firing) == "critical"
        assert severity_of("alert", resolved) == "info"
        with pytest.raises(ObsError, match="unknown journal source"):
            severity_of("weather", crash)

    def test_bounded_with_drop_counter_and_filters(self):
        journal = EventJournal(capacity=3)
        for i in range(5):
            journal.observe("fault", FaultEventRecord(
                kind="net-degradation", machine_id=i, at=float(i)))
        journal.observe("health", HealthEventRecord(
            kind="exclude", machine_id=9, at=9.0))
        assert len(journal) == 3 and journal.dropped == 3
        assert journal.total == 6
        critical = journal.events(min_severity="critical")
        assert [e.subject for e in critical] == ["machine 9"]
        assert journal.events(source="fault")[0].severity == "warning"
        with pytest.raises(ObsError, match="unknown severity"):
            journal.events(min_severity="fatal")

    def test_jsonl_sink_roundtrip_and_idempotent_close(self):
        buffer = io.StringIO()
        sink = JsonlJournalSink(buffer)
        journal = EventJournal(sink=sink)
        journal.observe("alert", AlertEventRecord(
            kind="firing", rule="hot", at=1.5, severity="warning",
            labels="machine=1", trace_id="job-3", span_id=33))
        sink.close()
        sink.close()  # idempotent
        journal.observe("fault", FaultEventRecord(
            kind="machine-crash", machine_id=0, at=2.0))  # silently dropped
        lines = buffer.getvalue().strip().splitlines()
        assert len(lines) == 1 and sink.written == 1
        row = json.loads(lines[0])
        assert row["subject"] == "hot{machine=1}"
        assert row["span_id"] == 33 and row["trace_id"] == "job-3"

    def test_format_empty_and_alignment(self):
        journal = EventJournal()
        assert journal.format() == "(journal empty)"
        journal.observe("health", HealthEventRecord(
            kind="suspect", machine_id=2, at=12.5, resource="network"))
        line = journal.format()
        assert "WARNING" in line and "machine 2 network" in line


class TestDrift:
    def test_template_calibration_then_scoring(self):
        detector = ModelDriftDetector(envelope=2.0, baseline_samples=2)
        # Bypass profiling: exercise the calibration bookkeeping via
        # the baseline map directly (observe_job needs a full run; the
        # end-to-end path is covered by the serving tests below).
        detector._baselines["wc"] = 18.0
        assert detector.baseline_for("wc") == 18.0
        assert detector.baseline_for("other") != detector.baseline_for(
            "other")  # NaN
        assert detector.drift_ratio() == 1.0  # nothing scored yet

    def test_constructor_validation(self):
        with pytest.raises(ObsError):
            ModelDriftDetector(envelope=1.0)
        with pytest.raises(ObsError):
            ModelDriftDetector(baseline_samples=0)
        with pytest.raises(ObsError):
            ModelDriftDetector(keep=0)

    def test_spark_jobs_are_not_attributable(self):
        cluster = hdd_cluster(num_machines=2, num_disks=1, seed=3)
        ctx = AnalyticsContext(cluster, engine="spark")
        obs = ObservabilityPlane()
        server = JobServer(ctx, seed=3, obs=obs)
        server.add_tenant("t")
        template = wordcount_template(ctx, num_blocks=2, block_mb=4.0)
        server.add_workload("t", template, TraceArrivals([1.0, 5.0]))
        server.run()
        verdicts = obs.drift_verdicts()
        assert verdicts and all(not v.attributable for v in verdicts)
        assert all("NOT ATTRIBUTABLE" in v.reason for v in verdicts)
        assert obs.drift.drift_ratio() == 1.0  # gauge stays neutral


class TestCollectorListener:
    def test_alert_records_and_listener_fanout(self):
        metrics = MetricsCollector()
        seen = []
        metrics.add_event_listener(lambda source, record:
                                   seen.append((source, record.kind)))
        metrics.record_alert(AlertEventRecord(kind="firing", rule="r",
                                              at=1.0))
        metrics.record_fault(FaultEventRecord(kind="machine-crash",
                                              machine_id=0, at=2.0))
        assert ("alert", "firing") in seen and ("fault",
                                                "machine-crash") in seen
        assert metrics.alert_records(kind="firing")[0].rule == "r"
        assert metrics.alert_records(rule="nope") == []


@pytest.fixture(scope="module")
def fail_slow_run():
    """One canonical fail-slow serving run with the plane attached."""
    workload = ObsWorkload(slow_jobs=12)
    return _fail_slow(workload), workload


class TestServingIntegration:
    def test_alerts_name_machine_and_tenant_before_exclusion(
            self, fail_slow_run):
        invariants, workload = fail_slow_run
        assert invariants["source_slow_fired_at"] < \
            invariants["health_excluded_at"]
        assert invariants["exemplars_resolve"] is True
        rules_fired = {(row["rule"], row["kind"]): row
                       for row in invariants["timeline"]}
        assert rules_fired[("source-slow", "firing")]["labels"] == \
            f"machine={workload.slow_machine}"
        assert rules_fired[("slo-burn", "firing")]["labels"] == \
            f"tenant={workload.slow_tenant}"

    def test_fail_slow_journal_interleaves_streams(self, fail_slow_run):
        invariants, _ = fail_slow_run
        counts = invariants["journal"]
        # fault injection (warning) + alert firings and health
        # exclusion (critical) all land in one journal.
        assert counts["critical"] >= 2 and counts["warning"] >= 2
        assert counts["dropped"] == 0

    def test_fault_free_run_is_silent_and_cheap(self):
        workload = ObsWorkload(free_horizon_s=60.0)
        invariants, overhead = _fault_free(workload)
        assert invariants["alert_transitions"] == 0
        assert invariants["drift_outside_envelope"] == 0
        assert invariants["drift_scored"] >= 1
        assert overhead["ms_per_sim_s"] < \
            workload.overhead_budget_ms_per_sim_s

    def test_same_seed_timeline_is_byte_identical(self):
        workload = ObsWorkload(slow_jobs=10)
        first = _fail_slow(workload)
        second = _fail_slow(workload)
        assert first == second

    def test_report_carries_obs_section(self):
        cluster = hdd_cluster(num_machines=4, num_disks=2, seed=1)
        ctx = AnalyticsContext(cluster, engine="monospark")
        plan = fail_slow_plan(machine_id=1, at=5.0, factor=10.0)
        FaultInjector(ctx.engine, plan).start()
        monitor = HealthMonitor(ctx.engine, HealthPolicy())
        obs = ObservabilityPlane()
        server = JobServer(ctx, seed=1, health=monitor, obs=obs)
        server.add_tenant("analytics", slo_s=3.0)
        template = wordcount_template(ctx, num_blocks=4, block_mb=16.0)
        server.add_workload("analytics", template,
                            TraceArrivals([1.0 + 2.5 * i
                                           for i in range(10)]))
        report = server.run()
        text = report.format()
        assert "Alert timeline (observability plane)" in text
        assert "source-slow" in text and "machine=1" in text
        assert "Event journal:" in text
        assert report.obs_timeline and report.obs_journal
        # The exemplar column resolves to a real span of a real job.
        fired = [r for r in report.obs_timeline if r.kind == "firing"]
        assert fired and any(r.span_id >= 0 for r in fired)
        for record in fired:
            if record.span_id < 0:
                continue
            job_id = int(record.trace_id[len("job-"):])
            spans = ctx.metrics.spans_for_job(job_id)
            assert any(span.span_id == record.span_id for span in spans)

    def test_attach_is_exclusive_and_start_needs_attach(self):
        obs = ObservabilityPlane()
        with pytest.raises(ObsError, match="attach"):
            obs.start()
        cluster = hdd_cluster(num_machines=2, num_disks=1, seed=0)
        ctx = AnalyticsContext(cluster, engine="monospark")
        obs.attach(ctx.engine)
        with pytest.raises(ObsError, match="already attached"):
            obs.attach(ctx.engine)

    def test_custom_rule_and_no_default_rules(self):
        cluster = hdd_cluster(num_machines=2, num_disks=1, seed=0)
        ctx = AnalyticsContext(cluster, engine="monospark")
        obs = ObservabilityPlane(default_rules=False)
        obs.add_rule(ThresholdRule(name="always", metric="repro_obs_"
                                   "drift_ratio", op=">=", threshold=0.0,
                                   window_s=10.0))
        obs.attach(ctx.engine)
        assert obs.alerts.rule_names() == ["always"]
        obs.start()
        server_env = ctx.engine.env
        server_env.run(until=server_env.timeout(3.0))
        obs.stop()
        assert [t.rule for t in obs.alert_timeline()] == ["always"]


class TestChromeTraceInstants:
    def test_alert_and_driver_instant_events(self, fail_slow_run):
        # Re-run a tiny scenario to get a collector in hand.
        from repro.metrics.chrometrace import DRIVER_PID, trace_events

        cluster = hdd_cluster(num_machines=4, num_disks=2, seed=1)
        ctx = AnalyticsContext(cluster, engine="monospark")
        plan = fail_slow_plan(machine_id=1, at=5.0, factor=10.0)
        FaultInjector(ctx.engine, plan).start()
        obs = ObservabilityPlane()
        server = JobServer(ctx, seed=1, obs=obs)
        server.add_tenant("analytics", slo_s=3.0)
        template = wordcount_template(ctx, num_blocks=4, block_mb=16.0)
        server.add_workload("analytics", template,
                            TraceArrivals([1.0 + 2.5 * i
                                           for i in range(8)]))
        server.run()
        events = trace_events(ctx.metrics)
        instants = [e for e in events if e["ph"] == "i"]
        alert_instants = [e for e in instants if e["cat"] == "alert"]
        assert alert_instants, "no alert instant events on whole-run export"
        for event in alert_instants:
            assert event["pid"] == DRIVER_PID
            assert event["tid"] == "alerts"
            assert event["s"] == "g"
            assert event["args"]["rule"]
        # Single-job exports omit instants (their timestamps would
        # dangle outside the job's window).
        job_id = sorted(ctx.metrics.jobs)[0]
        single = trace_events(ctx.metrics, job_id=job_id)
        assert not [e for e in single if e["ph"] == "i"]

    def test_driver_event_instants_from_controlplane(self):
        from repro.controlplane import ControlPlane
        from repro.faults import DriverCrash, FaultPlan
        from repro.metrics.chrometrace import trace_events
        from repro.serve import PoissonArrivals

        cluster = hdd_cluster(num_machines=2, num_disks=1, seed=2)
        ctx = AnalyticsContext(cluster, engine="monospark")
        obs = ObservabilityPlane()
        plane = ControlPlane(ctx, num_drivers=2, seed=2, obs=obs)
        template = wordcount_template(ctx, num_blocks=1, block_mb=2.0)
        plane.add_workload("t0", template,
                           PoissonArrivals(0.3, horizon_s=20.0))
        FaultInjector(ctx.engine, FaultPlan(
            [DriverCrash(at=10.0, driver_id=1)])).start()
        plane.run()
        events = trace_events(ctx.metrics)
        control = [e for e in events
                   if e["ph"] == "i" and e["cat"] == "control"]
        kinds = {e["args"]["kind"] for e in control}
        assert "driver-crash" in kinds
        assert any(k in kinds for k in ("leader", "election"))
        # driver-down alert rides along on the alerts track.
        alert_rules = {e["args"]["rule"] for e in events
                       if e["ph"] == "i" and e["cat"] == "alert"}
        assert "driver-down" in alert_rules


class TestFormatLabels:
    def test_format_labels(self):
        assert format_labels((("machine", "1"), ("resource", "net"))) == \
            "machine=1,resource=net"
        assert format_labels(()) == ""
