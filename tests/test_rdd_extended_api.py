"""Tests for the extended RDD API (union, distinct, sample, etc.)."""

import pytest

from repro.api import AnalyticsContext
from repro.cluster import hdd_cluster
from repro.errors import PlanError

ENGINES = ["spark", "monospark"]


def ctx_for(engine):
    return AnalyticsContext(hdd_cluster(num_machines=2), engine=engine)


@pytest.mark.parametrize("engine", ENGINES)
class TestKeyValueHelpers:
    def test_map_values(self, engine):
        ctx = ctx_for(engine)
        out = (ctx.parallelize([("a", 1), ("b", 2)], num_partitions=2)
               .map_values(lambda v: v * 10).collect())
        assert sorted(out) == [("a", 10), ("b", 20)]

    def test_flat_map_values(self, engine):
        ctx = ctx_for(engine)
        out = (ctx.parallelize([("a", 2)], num_partitions=1)
               .flat_map_values(lambda v: range(v)).collect())
        assert sorted(out) == [("a", 0), ("a", 1)]

    def test_keys_and_values(self, engine):
        ctx = ctx_for(engine)
        rdd = ctx.parallelize([("a", 1), ("b", 2)], num_partitions=2)
        assert sorted(rdd.keys().collect()) == ["a", "b"]
        assert sorted(rdd.values().collect()) == [1, 2]

    def test_count_by_key(self, engine):
        ctx = ctx_for(engine)
        counts = (ctx.parallelize([("a", 1), ("a", 2), ("b", 3)],
                                  num_partitions=2).count_by_key())
        assert counts == {"a": 2, "b": 1}


@pytest.mark.parametrize("engine", ENGINES)
class TestSetLikeOps:
    def test_distinct(self, engine):
        ctx = ctx_for(engine)
        out = (ctx.parallelize([1, 2, 2, 3, 3, 3], num_partitions=3)
               .distinct(num_partitions=2).collect())
        assert sorted(out) == [1, 2, 3]

    def test_union_concatenates(self, engine):
        ctx = ctx_for(engine)
        left = ctx.parallelize([1, 2], num_partitions=2)
        right = ctx.parallelize([3, 4, 5], num_partitions=3)
        union = left.union(right)
        assert union.num_partitions == 5
        assert sorted(union.collect()) == [1, 2, 3, 4, 5]

    def test_union_then_shuffle(self, engine):
        ctx = ctx_for(engine)
        left = ctx.parallelize([("a", 1)], num_partitions=1)
        right = ctx.parallelize([("a", 2), ("b", 3)], num_partitions=2)
        out = (left.union(right)
               .reduce_by_key(lambda a, b: a + b, num_partitions=2)
               .collect())
        assert sorted(out) == [("a", 3), ("b", 3)]

    def test_union_of_transformed(self, engine):
        ctx = ctx_for(engine)
        base = ctx.parallelize([1, 2, 3], num_partitions=3)
        doubled = base.map(lambda x: x * 2)
        tripled = base.map(lambda x: x * 3)
        out = sorted(doubled.union(tripled).collect())
        assert out == [2, 3, 4, 6, 6, 9]


@pytest.mark.parametrize("engine", ENGINES)
class TestSampleAndRepartition:
    def test_sample_is_deterministic(self, engine):
        ctx = ctx_for(engine)
        rdd = ctx.parallelize(range(200), num_partitions=4)
        first = sorted(rdd.sample(0.3, seed=1).collect())
        second = sorted(rdd.sample(0.3, seed=1).collect())
        assert first == second
        assert 20 < len(first) < 120

    def test_sample_fraction_validated(self, engine):
        ctx = ctx_for(engine)
        rdd = ctx.parallelize(range(10), num_partitions=1)
        with pytest.raises(PlanError):
            rdd.sample(0.0)
        with pytest.raises(PlanError):
            rdd.sample(1.5)

    def test_repartition_changes_partition_count(self, engine):
        ctx = ctx_for(engine)
        rdd = ctx.parallelize(range(40), num_partitions=2).repartition(8)
        assert rdd.num_partitions == 8
        assert sorted(rdd.collect()) == list(range(40))


@pytest.mark.parametrize("engine", ENGINES)
class TestSmallActions:
    def test_take_and_first(self, engine):
        ctx = ctx_for(engine)
        rdd = ctx.parallelize([5, 6, 7], num_partitions=1)
        assert rdd.take(2) == [5, 6]
        assert rdd.first() == 5
        with pytest.raises(PlanError):
            rdd.take(-1)

    def test_first_on_empty_raises(self, engine):
        ctx = ctx_for(engine)
        empty = ctx.parallelize(range(4), num_partitions=2).filter(
            lambda x: False)
        with pytest.raises(PlanError):
            empty.first()

    def test_reduce(self, engine):
        ctx = ctx_for(engine)
        total = ctx.parallelize(range(10), num_partitions=3).reduce(
            lambda a, b: a + b)
        assert total == 45

    def test_reduce_on_empty_raises(self, engine):
        ctx = ctx_for(engine)
        empty = ctx.parallelize([1], num_partitions=1).filter(
            lambda x: False)
        with pytest.raises(PlanError):
            empty.reduce(lambda a, b: a + b)
