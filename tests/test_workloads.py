"""Tests for the paper's workloads: generation, correctness, structure."""

import pytest

from repro.api import AnalyticsContext
from repro.cluster import hdd_cluster, ssd_cluster
from repro.config import GB, MB
from repro.errors import ConfigError
from repro.workloads.bigdata import (BdbScale, QUERIES, generate_bdb_tables,
                                     run_query)
from repro.workloads.ml import MlWorkload, make_ml_context, run_ml_iteration
from repro.workloads.scaling import scaled_memory_overrides
from repro.workloads.sortgen import (SortWorkload, generate_sort_input,
                                     run_sort, sort_boundaries)
from repro.workloads.wordcount import generate_text_input, word_count


class TestSortWorkload:
    def test_record_bytes_scale_with_values(self):
        small = SortWorkload(total_bytes=GB, values_per_key=10,
                             num_map_tasks=8)
        large = SortWorkload(total_bytes=GB, values_per_key=50,
                             num_map_tasks=8)
        assert large.record_bytes > small.record_bytes
        assert large.total_records < small.total_records

    def test_boundaries_are_balanced(self):
        workload = SortWorkload(total_bytes=GB, values_per_key=10,
                                num_map_tasks=4, num_reduce_tasks=4)
        boundaries = sort_boundaries(workload)
        assert len(boundaries) == 3
        assert boundaries == sorted(boundaries)

    def test_generate_creates_blocks(self):
        cluster = hdd_cluster(num_machines=2)
        workload = SortWorkload(total_bytes=GB, values_per_key=10,
                                num_map_tasks=8)
        generate_sort_input(cluster, workload)
        dfs_file = cluster.dfs.get_file("sort-input")
        assert len(dfs_file.blocks) == 8
        assert dfs_file.nbytes == pytest.approx(GB)

    @pytest.mark.parametrize("engine", ["spark", "monospark"])
    def test_sort_produces_sorted_output(self, engine):
        cluster = hdd_cluster(num_machines=2,
                              **scaled_memory_overrides(0.01))
        workload = SortWorkload(total_bytes=2 * GB, values_per_key=10,
                                num_map_tasks=16)
        generate_sort_input(cluster, workload)
        ctx = AnalyticsContext(cluster, engine=engine)
        result = run_sort(ctx, workload)
        assert result.duration > 0
        out = cluster.dfs.get_file("sort-output")
        assert len(out.blocks) == workload.reduce_tasks
        assert out.nbytes == pytest.approx(2 * GB, rel=0.05)

    def test_invalid_workload_rejected(self):
        with pytest.raises(ConfigError):
            SortWorkload(total_bytes=0, values_per_key=10, num_map_tasks=1)
        with pytest.raises(ConfigError):
            SortWorkload(total_bytes=1, values_per_key=0, num_map_tasks=1)


class TestWordCount:
    def test_counts_are_consistent(self):
        cluster = hdd_cluster(num_machines=2)
        generate_text_input(cluster, num_blocks=4, block_bytes=16 * MB)
        ctx = AnalyticsContext(cluster, engine="monospark")
        word_count(ctx, output_name=None)
        records = ctx.last_result  # JobResult from collect path
        assert records is not None

    def test_output_file_written(self):
        cluster = hdd_cluster(num_machines=2)
        generate_text_input(cluster, num_blocks=4, block_bytes=16 * MB)
        ctx = AnalyticsContext(cluster, engine="spark")
        word_count(ctx, num_reduce_tasks=4)
        out = cluster.dfs.get_file("wordcount-output")
        assert len(out.blocks) == 4


class TestBigDataBenchmark:
    @classmethod
    def setup_class(cls):
        cls.scale = BdbScale(fraction=0.01)

    def make_ctx(self, engine="monospark"):
        cluster = hdd_cluster(num_machines=5,
                              **scaled_memory_overrides(0.01))
        generate_bdb_tables(cluster, self.scale)
        return AnalyticsContext(cluster, engine=engine)

    def test_tables_created_with_right_sizes(self):
        ctx = self.make_ctx()
        dfs = ctx.cluster.dfs
        uservisits = dfs.get_file("uservisits")
        # Stored compressed at half the logical (scaled) size.
        assert uservisits.nbytes == pytest.approx(
            self.scale.uservisits_bytes * 0.01 * 0.5, rel=0.01)
        assert dfs.exists("rankings") and dfs.exists("documents")

    def test_query1_result_size_tracks_selectivity(self):
        ctx = self.make_ctx()
        run_query(ctx, "1a", self.scale)
        small = ctx.cluster.dfs.get_file("bdb-out-1a").nbytes
        run_query(ctx, "1c", self.scale)
        large = ctx.cluster.dfs.get_file("bdb-out-1c").nbytes
        assert large > 100 * small

    def test_query2_is_multi_stage(self):
        ctx = self.make_ctx()
        result = run_query(ctx, "2b", self.scale)
        stages = ctx.metrics.stage_records(result.job_id)
        assert len(stages) == 2

    def test_query3_has_join_stages(self):
        ctx = self.make_ctx()
        result = run_query(ctx, "3a", self.scale)
        stages = ctx.metrics.stage_records(result.job_id)
        # uservisits map, rankings map, join, group-by, = 4+ stages.
        assert len(stages) >= 4

    def test_query4_runs(self):
        ctx = self.make_ctx()
        result = run_query(ctx, "4", self.scale)
        assert result.duration > 0

    def test_unknown_query_rejected(self):
        ctx = self.make_ctx()
        with pytest.raises(ConfigError):
            run_query(ctx, "5x", self.scale)

    def test_all_queries_listed(self):
        assert len(QUERIES) == 10

    def test_invalid_fraction_rejected(self):
        with pytest.raises(ConfigError):
            BdbScale(fraction=0.0)

    def test_queries_run_on_spark_engine_too(self):
        ctx = self.make_ctx(engine="spark")
        result = run_query(ctx, "1b", self.scale)
        assert result.duration > 0


class TestMlWorkload:
    def test_dimensions(self):
        workload = MlWorkload()
        assert workload.matrix_bytes == pytest.approx(1e6 * 4096 * 8)
        assert workload.partial_product_bytes == 4096 * 512 * 8

    @pytest.mark.parametrize("engine", ["spark", "monospark"])
    def test_iteration_structure(self, engine):
        cluster = ssd_cluster(num_machines=4)
        ctx = make_ml_context(cluster, engine,
                              MlWorkload(num_row_blocks=16))
        result = run_ml_iteration(ctx, 0)
        stages = ctx.metrics.stage_records(result.job_id)
        assert len(stages) == 2
        # In-memory shuffle: the iteration must not touch any disk.
        from repro.metrics.events import DISK
        disk_monotasks = [m for m in ctx.metrics.stage_monotasks(
            result.job_id) if m.resource == DISK]
        assert not disk_monotasks
        for machine in cluster.machines:
            for disk in machine.disks:
                assert disk.bytes_read == 0

    def test_gram_matrices_numerically_correct(self):
        import numpy as np
        cluster = ssd_cluster(num_machines=2)
        workload = MlWorkload(num_row_blocks=4, sample_rows=4,
                              sample_cols=3)
        ctx = make_ml_context(cluster, "monospark", workload, seed=7)
        matrix = ctx._ml_matrix
        partials = matrix.map(lambda rec: rec[1].T @ rec[1])
        grams = partials.collect()
        blocks = [p.records[0][1]
                  for p in matrix._plan_time_partitions()]
        expected = [b.T @ b for b in blocks]
        for got, want in zip(grams, expected):
            assert np.allclose(got, want)

    def test_invalid_workload(self):
        with pytest.raises(ConfigError):
            MlWorkload(rows=0)


class TestScaling:
    def test_overrides_scale_linearly(self):
        overrides = scaled_memory_overrides(0.1)
        assert overrides["buffer_cache_bytes"] == pytest.approx(3 * GB)
        assert overrides["memory_bytes"] == pytest.approx(6 * GB)

    def test_invalid_fraction(self):
        with pytest.raises(ConfigError):
            scaled_memory_overrides(0.0)
        with pytest.raises(ConfigError):
            scaled_memory_overrides(1.5)
