"""Tests for the §8 'opportunities' implemented as optional features."""

import pytest

from repro import AnalyticsContext, MB
from repro.api.ops import OpCost
from repro.cluster import hdd_cluster
from repro.datamodel import Partition
from repro.errors import ConfigError
from repro.monospark.engine import MonoSparkEngine


def dfs_cluster(blocks=16, block_mb=64, machines=1, **overrides):
    cluster = hdd_cluster(num_machines=machines, **overrides)
    payloads = [Partition.from_records([(i, i)], record_count=1,
                                       data_bytes=block_mb * MB)
                for i in range(blocks)]
    cluster.dfs.create_file("input", payloads, [block_mb * MB] * blocks)
    return cluster


class TestShortestQueueWritePolicy:
    def test_policy_validated(self):
        with pytest.raises(ConfigError):
            MonoSparkEngine(hdd_cluster(num_machines=1),
                            write_disk_policy="random")

    def test_shortest_queue_balances_loaded_disks(self):
        """With one disk busy serving reads, writes go to the other."""
        cluster = dfs_cluster(blocks=16)
        # Pin every block replica to disk 0 so reads hammer it.
        for block in cluster.dfs.get_file("input").blocks:
            block.replicas = [(0, 0)]
        ctx = AnalyticsContext(cluster, engine="monospark",
                               write_disk_policy="shortest_queue")
        ctx.text_file("input").save_as_text_file("out")
        disk0, disk1 = cluster.machine(0).disks
        # The loaded disk received fewer of the output writes.
        assert disk1.bytes_written > disk0.bytes_written

    def test_shortest_queue_not_slower(self):
        def run(policy):
            cluster = dfs_cluster(blocks=16)
            for block in cluster.dfs.get_file("input").blocks:
                block.replicas = [(0, 0)]
            ctx = AnalyticsContext(cluster, engine="monospark",
                                   write_disk_policy=policy)
            ctx.text_file("input").save_as_text_file("out")
            return ctx.last_result.duration

        assert run("shortest_queue") <= run("round_robin") * 1.01


class TestMemoryPressureWritePriority:
    def test_fraction_validated(self):
        with pytest.raises(ConfigError):
            MonoSparkEngine(hdd_cluster(num_machines=1),
                            memory_pressure_fraction=0.0)

    def test_pressure_predicate(self):
        cluster = hdd_cluster(num_machines=1)
        engine = MonoSparkEngine(
            cluster, prioritize_writes_under_memory_pressure=True,
            memory_pressure_fraction=0.5)
        worker = engine.workers[0]
        assert not worker.memory_pressure()
        cluster.machine(0).memory.acquire(
            cluster.machine(0).memory.capacity * 0.6)
        assert worker.memory_pressure()

    def test_writes_prioritized_under_pressure(self):
        """Under pressure the disk scheduler serves write phases first."""
        from repro.monospark.schedulers import ResourceScheduler
        from repro.simulator import Environment

        class Fake:
            def __init__(self, env, phase, log):
                self.env, self.phase, self.log = env, phase, log
                self.deps, self.done = [], env.event()
                self.submitted_at = self.started_at = None

            def execute(self):
                yield self.env.timeout(1.0)

            def record(self):
                self.log.append(self.phase)

        env = Environment()
        log = []
        pressured = {"on": True}
        scheduler = ResourceScheduler(
            env, 1, "d", prefer_phases_when=(lambda: pressured["on"],
                                             "write"))
        scheduler.submit(Fake(env, "input_read", log))   # runs first
        for _ in range(2):
            scheduler.submit(Fake(env, "input_read", log))
        for _ in range(2):
            scheduler.submit(Fake(env, "shuffle_write", log))
        env.run()
        # Both writes drained before the queued reads.
        assert log[1] == "shuffle_write"
        assert log[2] == "shuffle_write"

    def test_engine_runs_with_pressure_priority(self):
        cluster = dfs_cluster(blocks=8)
        ctx = AnalyticsContext(
            cluster, engine="monospark",
            prioritize_writes_under_memory_pressure=True,
            memory_pressure_fraction=0.01)  # always under pressure
        ctx.text_file("input").save_as_text_file("out")
        assert ctx.last_result.duration > 0
