"""Tests for stage-profile attribution details in the model inputs."""

import pytest

from repro.api import AnalyticsContext
from repro.cluster import hdd_cluster
from repro.config import GB, MB
from repro.metrics.events import (PHASE_INPUT_READ, PHASE_OUTPUT_WRITE,
                                  PHASE_SHUFFLE_READ, PHASE_SHUFFLE_SERVE,
                                  PHASE_SHUFFLE_WRITE)
from repro.model import profile_job
from repro.workloads.scaling import scaled_memory_overrides
from repro.workloads.sortgen import SortWorkload, generate_sort_input, run_sort


@pytest.fixture(scope="module")
def sort_run():
    cluster = hdd_cluster(num_machines=4, **scaled_memory_overrides(0.01))
    workload = SortWorkload(total_bytes=6 * GB, values_per_key=25,
                            num_map_tasks=64)
    generate_sort_input(cluster, workload)
    ctx = AnalyticsContext(cluster, engine="monospark")
    result = run_sort(ctx, workload)
    profiles = {p.stage_id: p
                for p in profile_job(ctx.metrics, result.job_id)}
    return ctx, result, profiles


class TestPhaseAttribution:
    def test_map_stage_phases(self, sort_run):
        _, _, profiles = sort_run
        map_stage = next(p for p in profiles.values() if p.reads_dfs_input)
        assert map_stage.disk_bytes[PHASE_INPUT_READ] == pytest.approx(
            6 * GB, rel=0.01)
        assert map_stage.disk_bytes[PHASE_SHUFFLE_WRITE] == pytest.approx(
            6 * GB, rel=0.01)
        assert PHASE_OUTPUT_WRITE not in map_stage.disk_bytes

    def test_reduce_stage_phases(self, sort_run):
        _, _, profiles = sort_run
        reduce_stage = next(p for p in profiles.values()
                            if not p.reads_dfs_input)
        # Shuffle-serve reads (issued on remote machines!) are attributed
        # to the stage that requested them, and local reads plus remote
        # serves together cover the whole shuffle.
        read = reduce_stage.disk_bytes.get(PHASE_SHUFFLE_READ, 0.0)
        serve = reduce_stage.disk_bytes.get(PHASE_SHUFFLE_SERVE, 0.0)
        assert read + serve == pytest.approx(6 * GB, rel=0.01)
        assert serve > read  # most buckets live on remote machines
        assert reduce_stage.disk_bytes[PHASE_OUTPUT_WRITE] == pytest.approx(
            6 * GB, rel=0.01)

    def test_network_bytes_are_the_remote_share(self, sort_run):
        _, _, profiles = sort_run
        reduce_stage = next(p for p in profiles.values()
                            if not p.reads_dfs_input)
        serve = reduce_stage.disk_bytes[PHASE_SHUFFLE_SERVE]
        assert reduce_stage.network_bytes == pytest.approx(serve, rel=0.01)

    def test_input_deserialize_only_on_map(self, sort_run):
        _, _, profiles = sort_run
        map_stage = next(p for p in profiles.values() if p.reads_dfs_input)
        reduce_stage = next(p for p in profiles.values()
                            if not p.reads_dfs_input)
        assert map_stage.input_deserialize_s > 0
        assert reduce_stage.input_deserialize_s == 0.0
        # Both stages deserialize *something* (input vs shuffle data).
        assert reduce_stage.deserialize_s > 0

    def test_measured_durations_sum_to_job(self, sort_run):
        ctx, result, profiles = sort_run
        total = sum(p.measured_duration_s for p in profiles.values())
        # Stages run back-to-back; tiny scheduling gaps allowed.
        assert total == pytest.approx(result.duration, rel=0.02)
