"""Tests for straggler/degradation injection and diagnosis."""

import pytest

from repro import AnalyticsContext, MB, hdd_cluster
from repro.api.ops import OpCost
from repro.datamodel import Partition
from repro.errors import ConfigError, ModelError
from repro.model import diagnose_stragglers


def make_ctx(machines=4, degrade=None, **degrade_kwargs):
    cluster = hdd_cluster(num_machines=machines)
    payloads = [Partition.from_records([(i, i)], record_count=1,
                                       data_bytes=96 * MB)
                for i in range(machines * 8)]
    cluster.dfs.create_file("input", payloads,
                            [96 * MB] * (machines * 8))
    if degrade is not None:
        cluster.degrade_machine(degrade, **degrade_kwargs)
    ctx = AnalyticsContext(cluster, engine="monospark")
    (ctx.text_file("input")
        .map(lambda kv: kv, cost=OpCost(per_record_s=2.0), size_ratio=1.0)
        .save_as_text_file("out"))
    return ctx


class TestDegradeMachine:
    def test_cpu_degradation_slows_compute(self):
        healthy = make_ctx(machines=2)
        degraded_ctx = make_ctx(machines=2, degrade=0, cpu_factor=0.5)
        assert (degraded_ctx.last_result.duration
                > healthy.last_result.duration)

    def test_disk_degradation_slows_io(self):
        healthy = make_ctx(machines=2)
        degraded_ctx = make_ctx(machines=2, degrade=0, disk_factor=0.3)
        assert (degraded_ctx.last_result.duration
                > healthy.last_result.duration)

    def test_invalid_factors(self):
        cluster = hdd_cluster(num_machines=1)
        with pytest.raises(ConfigError):
            cluster.degrade_machine(0, cpu_factor=0.0)


class TestDiagnosis:
    def test_healthy_cluster_reports_healthy(self):
        ctx = make_ctx(machines=4)
        report = diagnose_stragglers(ctx.metrics,
                                     ctx.last_result.job_id)
        assert report.healthy
        assert len(report.machines) == 4
        assert report.median_disk_bps is not None

    def test_slow_disk_identified(self):
        ctx = make_ctx(machines=4, degrade=2, disk_factor=0.3)
        report = diagnose_stragglers(ctx.metrics,
                                     ctx.last_result.job_id)
        assert report.slow_disks == [2]
        assert report.slow_cpus == []
        # Observed rate reflects the injected degradation.
        slow = report.machines[2].disk_bps
        assert slow < 0.5 * report.median_disk_bps

    def test_slow_cpu_identified(self):
        ctx = make_ctx(machines=4, degrade=1, cpu_factor=0.4)
        report = diagnose_stragglers(ctx.metrics,
                                     ctx.last_result.job_id)
        assert report.slow_cpus == [1]
        assert report.machines[1].cpu_slowdown == pytest.approx(
            1 / 0.4, rel=0.05)

    def test_thresholds_validated(self):
        ctx = make_ctx(machines=2)
        with pytest.raises(ModelError):
            diagnose_stragglers(ctx.metrics, ctx.last_result.job_id,
                                disk_threshold=0.0)
        with pytest.raises(ModelError):
            diagnose_stragglers(ctx.metrics, ctx.last_result.job_id,
                                cpu_threshold=0.5)

    def test_spark_run_cannot_be_diagnosed(self):
        cluster = hdd_cluster(num_machines=1)
        ctx = AnalyticsContext(cluster, engine="spark")
        ctx.parallelize(range(4), num_partitions=2).count()
        with pytest.raises(ModelError):
            diagnose_stragglers(ctx.metrics, ctx.last_result.job_id)
