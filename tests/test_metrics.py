"""Unit tests for metrics collection, utilization, and reporting."""

import pytest

from repro.metrics import (MetricsCollector, MonotaskRecord, format_seconds,
                           format_table, percentile, sample_utilization)
from repro.metrics.events import CPU, DISK, NETWORK, PHASE_COMPUTE
from repro.metrics.utilization import UtilizationSummary
from repro.simulator import BusyTracker, Environment


def make_record(resource=CPU, phase=PHASE_COMPUTE, job=0, stage=0,
                start=0.0, end=1.0, nbytes=0.0, **kw):
    return MonotaskRecord(job_id=job, stage_id=stage, task_index=0,
                          resource=resource, phase=phase, machine_id=0,
                          start=start, end=end, nbytes=nbytes, **kw)


class TestMetricsCollector:
    def test_job_and_stage_lifecycle(self):
        collector = MetricsCollector()
        collector.job_started(0, "job", 0.0)
        collector.stage_started(0, 0, "map", 4, 0.0)
        collector.stage_finished(0, 0, 10.0)
        collector.job_finished(0, 12.0)
        assert collector.job_duration(0) == 12.0
        assert collector.stage_records(0)[0].duration == 10.0
        assert collector.stage_window(0, 0) == (0.0, 10.0)

    def test_monotask_aggregation(self):
        collector = MetricsCollector()
        collector.job_started(0, "j", 0.0)
        collector.stage_started(0, 0, "s", 1, 0.0)
        collector.record_monotask(make_record(CPU, end=2.0))
        collector.record_monotask(make_record(CPU, end=3.0))
        collector.record_monotask(make_record(DISK, nbytes=100.0))
        collector.record_monotask(make_record(NETWORK, nbytes=50.0))
        assert collector.total_compute_seconds(0) == pytest.approx(5.0)
        assert collector.total_disk_bytes(0) == 100.0
        assert collector.total_network_bytes(0) == 50.0

    def test_stage_filtering(self):
        collector = MetricsCollector()
        collector.record_monotask(make_record(CPU, stage=0, end=1.0))
        collector.record_monotask(make_record(CPU, stage=1, end=5.0))
        assert collector.total_compute_seconds(0, stage_id=0) == 1.0
        assert collector.total_compute_seconds(0, stage_id=1) == 5.0
        assert collector.total_compute_seconds(0) == 6.0

    def test_monotask_record_properties(self):
        record = make_record(start=2.0, end=5.0)
        assert record.duration == 3.0
        assert not record.is_input_read

    def test_tasks_for_stage(self):
        collector = MetricsCollector()
        record = collector.task_started(0, 1, 3, machine_id=2, now=1.0)
        record.end = 4.0
        found = collector.tasks_for_stage(0, 1)
        assert len(found) == 1
        assert found[0].duration == 3.0


class TestUtilizationHelpers:
    def test_sample_utilization_windows(self):
        env = Environment()
        tracker = BusyTracker(env, units=1)

        def proc():
            tracker.add(1)
            yield env.timeout(5.0)
            tracker.remove(1)
            yield env.timeout(5.0)

        env.run(until=env.process(proc()))
        samples = sample_utilization(tracker, 0.0, 10.0, 2.5)
        assert [round(u, 2) for _, u in samples] == [1.0, 1.0, 0.0, 0.0]

    def test_sample_utilization_no_float_drift(self):
        # Regression: accumulating ``t += step`` drifted after many
        # windows (0.1 is not exact in binary), eventually misaligning
        # window edges and dropping or duplicating the final sample.
        env = Environment()
        tracker = BusyTracker(env, units=1)
        samples = sample_utilization(tracker, 0.0, 100.0, 0.1)
        assert len(samples) == 1000
        for index, (t, _) in enumerate(samples):
            assert t == 0.0 + index * 0.1  # exact, not approximate
        # The last window must start strictly before ``end``.
        assert samples[-1][0] < 100.0

    def test_sample_requires_positive_step(self):
        env = Environment()
        tracker = BusyTracker(env, units=1)
        with pytest.raises(ValueError):
            sample_utilization(tracker, 0.0, 1.0, 0.0)

    def test_percentiles(self):
        values = [1.0, 2.0, 3.0, 4.0]
        assert percentile(values, 0) == 1.0
        assert percentile(values, 100) == 4.0
        assert percentile(values, 50) == pytest.approx(2.5)
        with pytest.raises(ValueError):
            percentile([], 50)

    def test_percentile_single_element(self):
        for q in (0, 37.5, 50, 99, 100):
            assert percentile([7.0], q) == 7.0

    def test_percentile_interpolates_between_ranks(self):
        values = [0.0, 10.0]
        assert percentile(values, 25) == pytest.approx(2.5)
        assert percentile(values, 95) == pytest.approx(9.5)
        # Input order must not matter.
        assert percentile([10.0, 0.0], 95) == pytest.approx(9.5)

    def test_percentile_rejects_out_of_range_q(self):
        for q in (-0.1, 100.1, float("inf"), float("nan")):
            with pytest.raises(ValueError):
                percentile([1.0, 2.0], q)

    def test_ranked_resources(self):
        summary = UtilizationSummary(cpu=0.9, disks=[0.3, 0.7],
                                     net_rx=0.5, net_tx=0.2)
        ranked = summary.ranked()
        assert ranked[0] == ("cpu", 0.9)
        assert ranked[1] == ("disk", 0.7)
        assert ranked[2] == ("network", 0.5)
        assert summary.as_dict()["disk1"] == 0.7


class TestReporting:
    def test_format_seconds_units(self):
        assert format_seconds(0.5).endswith("ms")
        assert format_seconds(5).endswith("s")
        assert format_seconds(120).endswith("min")
        assert format_seconds(7200).endswith("h")

    def test_format_table_alignment(self):
        table = format_table(["name", "value"],
                             [["a", 1.0], ["long-name", 123.456]],
                             title="T")
        lines = table.splitlines()
        assert lines[0] == "T"
        assert "name" in lines[2]
        assert len(lines) == 6

    def test_nan_rendered_as_dash(self):
        table = format_table(["x"], [[float("nan")]])
        assert "-" in table.splitlines()[-1]
