"""Tests for the causal tracing subsystem (`repro.trace`).

Covers the ISSUE-4 contract: JSONL trace export round-trips, the
critical path partitions the job window exactly (on a hand-built plan
where the answer is known), the Prometheus exposition lints, the
collector's close paths reject bad ids, and span trees from seeded
random plans are well-formed (every parent exists, no cycles).
"""

import json
import random
import re

import pytest

from repro import AnalyticsContext, MB, hdd_cluster
from repro.datamodel import Partition
from repro.errors import SimulationError
from repro.metrics.collector import MetricsCollector
from repro.metrics.events import (CPU, DISK, NETWORK, PHASE_COMPUTE,
                                  PHASE_INPUT_READ, PHASE_SHUFFLE_READ,
                                  MonotaskRecord)
from repro.trace import (SPAN_ATTEMPT, SPAN_JOB, SPAN_MONOTASK, SPAN_STAGE,
                         JsonlSpanSink, TelemetryRegistry, TelemetrySampler,
                         critical_path, render_prometheus)


def run_shuffle(engine="monospark", num_blocks=8, modulus=2,
                num_partitions=2, records_per_block=2, seed=0):
    """A small shuffle job; records spread keys so reducers fetch
    remotely."""
    cluster = hdd_cluster(num_machines=2, seed=seed)
    payloads = [Partition.from_records(
        [(i, j) for j in range(records_per_block)],
        record_count=records_per_block, data_bytes=32 * MB)
        for i in range(num_blocks)]
    cluster.dfs.create_file("input", payloads, [32 * MB] * num_blocks)
    ctx = AnalyticsContext(cluster, engine=engine)
    (ctx.text_file("input")
        .map(lambda kv: (kv[1] % modulus, 1), size_ratio=1.0)
        .reduce_by_key(lambda a, b: a + b, num_partitions=num_partitions)
        .collect())
    return ctx


class TestJsonlRoundTrip:
    def test_sink_matches_collector(self, tmp_path):
        path = tmp_path / "spans.jsonl"
        cluster = hdd_cluster(num_machines=2)
        payloads = [Partition.from_records([(i, 0), (i, 1)], record_count=2,
                                           data_bytes=32 * MB)
                    for i in range(8)]
        cluster.dfs.create_file("input", payloads, [32 * MB] * 8)
        ctx = AnalyticsContext(cluster, engine="monospark")
        sink = JsonlSpanSink(str(path))
        ctx.metrics.add_span_sink(sink)
        (ctx.text_file("input")
            .map(lambda kv: (kv[1] % 2, 1), size_ratio=1.0)
            .reduce_by_key(lambda a, b: a + b, num_partitions=2)
            .collect())
        sink.close()

        lines = [json.loads(line)
                 for line in path.read_text().splitlines()]
        spans = [line for line in lines if line["type"] == "span"]
        links = [line for line in lines if line["type"] == "link"]
        assert len(spans) == sink.spans_written == len(ctx.metrics.spans)
        assert len(links) == sink.links_written == len(ctx.metrics.links)

        span_ids = {span["span_id"] for span in spans}
        for link in links:
            assert link["from"] in span_ids
            assert link["to"] in span_ids
        for span in spans:
            if span["parent_id"] is not None:
                assert span["parent_id"] in span_ids
        kinds = {span["kind"] for span in spans}
        assert kinds == {"job", "stage", "attempt", "monotask"}
        assert {link["kind"] for link in links} >= {"shuffle-fetch",
                                                    "dag-edge"}

    def test_closed_sink_drops_silently(self, tmp_path):
        path = tmp_path / "spans.jsonl"
        sink = JsonlSpanSink(str(path))
        sink.close()
        sink.close()  # idempotent
        metrics = MetricsCollector()
        metrics.add_span_sink(sink)
        metrics.job_started(0, "late", now=0.0)
        metrics.job_finished(0, now=1.0)
        assert sink.spans_written == 0
        assert path.read_text() == ""


def build_tiny_plan():
    """A hand-built two-stage plan with a known critical path.

    machine 0: disk read [0, 2], cpu queued [2, 3], cpu [3, 6]
    driver gap [6, 7]
    machine 1: network fetch [7, 9]
    """
    metrics = MetricsCollector()
    metrics.job_started(0, "tiny", now=0.0)
    metrics.stage_started(0, 0, "map", num_tasks=1, now=0.0)
    attempt = metrics.attempt_started(0, 0, 0, attempt=0, machine_id=0,
                                      now=0.0)
    metrics.record_monotask(MonotaskRecord(
        job_id=0, stage_id=0, task_index=0, resource=DISK,
        phase=PHASE_INPUT_READ, machine_id=0, start=0.0, end=2.0,
        disk_index=0, nbytes=32 * MB), trace=attempt)
    metrics.record_monotask(MonotaskRecord(
        job_id=0, stage_id=0, task_index=0, resource=CPU,
        phase=PHASE_COMPUTE, machine_id=0, start=3.0, end=6.0,
        queue_s=1.0), trace=attempt)
    metrics.attempt_finished(attempt, now=6.0, outcome="success")
    metrics.stage_finished(0, 0, now=6.0)
    metrics.stage_started(0, 1, "reduce", num_tasks=1, now=7.0,
                          parent_stage_ids=[0])
    attempt = metrics.attempt_started(0, 1, 0, attempt=0, machine_id=1,
                                      now=7.0)
    metrics.record_monotask(MonotaskRecord(
        job_id=0, stage_id=1, task_index=0, resource=NETWORK,
        phase=PHASE_SHUFFLE_READ, machine_id=1, start=7.0, end=9.0),
        trace=attempt)
    metrics.attempt_finished(attempt, now=9.0, outcome="success")
    metrics.stage_finished(0, 1, now=9.0)
    metrics.job_finished(0, now=9.0)
    return metrics


class TestCriticalPathInvariants:
    def test_partitions_job_window_exactly(self):
        report = critical_path(build_tiny_plan(), 0, engine="monospark")
        assert report.attributable
        assert report.duration == pytest.approx(9.0)
        assert report.total_attributed == pytest.approx(report.duration,
                                                        abs=1e-9)
        assert report.segments[0].start == report.start
        assert report.segments[-1].end == report.end
        for left, right in zip(report.segments, report.segments[1:]):
            assert left.end == pytest.approx(right.start, abs=1e-9)

    def test_known_attribution(self):
        report = critical_path(build_tiny_plan(), 0)
        assert report.by_label() == pytest.approx({
            "disk": 2.0, "cpu queue": 1.0, "cpu": 3.0,
            "driver": 1.0, "network": 2.0})
        assert sum(report.fractions().values()) == pytest.approx(1.0)
        assert report.by_machine() == pytest.approx(
            {0: 6.0, -1: 1.0, 1: 2.0})
        label, machine, seconds = report.dominant()
        assert (label, machine) == ("cpu", 0)
        assert seconds == pytest.approx(3.0)

    def test_blended_fallback_not_attributable(self):
        metrics = MetricsCollector()
        metrics.job_started(0, "blended", now=0.0)
        metrics.stage_started(0, 0, "s", num_tasks=1, now=0.0)
        attempt = metrics.attempt_started(0, 0, 0, attempt=0, machine_id=0,
                                          now=0.0)
        metrics.attempt_finished(attempt, now=4.0, outcome="success")
        metrics.stage_finished(0, 0, now=4.0)
        metrics.job_finished(0, now=5.0)
        report = critical_path(metrics, 0, engine="spark")
        assert not report.attributable
        assert report.total_attributed == pytest.approx(report.duration)
        assert set(report.by_label()) == {"task", "driver"}
        assert "NOT ATTRIBUTABLE" in report.format()

    def test_unknown_and_unfinished_jobs_rejected(self):
        metrics = build_tiny_plan()
        with pytest.raises(SimulationError, match="unknown job id 7"):
            critical_path(metrics, 7)
        metrics.job_started(1, "open", now=10.0)
        with pytest.raises(SimulationError, match="unfinished job 1"):
            critical_path(metrics, 1)

    def test_real_run_sums_to_wall_clock(self):
        ctx = run_shuffle("monospark")
        job_id = ctx.last_result.job_id
        report = critical_path(ctx.metrics, job_id, engine="monospark")
        assert report.attributable
        assert report.total_attributed == pytest.approx(
            ctx.metrics.job_duration(job_id), abs=1e-9)
        assert "network" in report.by_label()


class TestCollectorHardening:
    def test_duplicate_job_rejected(self):
        metrics = MetricsCollector()
        metrics.job_started(0, "first", now=0.0)
        with pytest.raises(SimulationError, match="job id 0"):
            metrics.job_started(0, "again", now=1.0)

    def test_unknown_close_paths_rejected(self):
        metrics = MetricsCollector()
        metrics.job_started(0, "job", now=0.0)
        with pytest.raises(SimulationError, match="stage"):
            metrics.stage_finished(0, 3, now=1.0)
        with pytest.raises(SimulationError, match="job"):
            metrics.job_finished(9, now=1.0)


_SAMPLE_RE = re.compile(
    r'^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[a-zA-Z_][a-zA-Z0-9_]*='
    r'"(?:[^"\\\n]|\\["\\n])*"(,[a-zA-Z_][a-zA-Z0-9_]*='
    r'"(?:[^"\\\n]|\\["\\n])*")*\})? -?[0-9][0-9a-zA-Z.+-]*$')


class TestPrometheusExposition:
    def make_registry(self):
        registry = TelemetryRegistry()
        registry.gauge("repro_queue_depth", "Waiting monotasks",
                       lambda: 3, machine=0, resource="disk0")
        registry.gauge("repro_queue_depth", "Waiting monotasks",
                       lambda: 0.5, machine=1, resource="cpu")
        registry.counter("repro_retries_total", "Attempt retries",
                         lambda: 7)
        registry.gauge("repro_oddball", "Label escaping",
                       lambda: 1, note='say "hi"\\\n')
        return registry

    def test_lint(self):
        text = render_prometheus(self.make_registry(), now=12.5)
        assert text.endswith("\n")
        seen_types = {}
        for line in text.splitlines():
            if line.startswith("# HELP ") or line.startswith("# TYPE "):
                _, kind, name = line.split(" ", 3)[:3]
                if kind == "TYPE":
                    seen_types[name] = line.rsplit(" ", 1)[1]
                continue
            if line.startswith("#"):
                continue
            assert _SAMPLE_RE.match(line), line
            name = re.split(r"[{ ]", line, 1)[0]
            assert name in seen_types, f"sample before TYPE: {line}"
        assert seen_types == {"repro_queue_depth": "gauge",
                              "repro_retries_total": "counter",
                              "repro_oddball": "gauge"}

    def test_deterministic_and_escaped(self):
        registry = self.make_registry()
        first = render_prometheus(registry)
        assert first == render_prometheus(registry)
        assert r'note="say \"hi\"\\\n"' in first
        assert 'repro_queue_depth{machine="0",resource="disk0"} 3' in first
        assert "0.5" in first

    def test_bad_registrations_rejected(self):
        registry = self.make_registry()
        with pytest.raises(SimulationError, match="invalid metric name"):
            registry.gauge("bad-name", "x", lambda: 0)
        with pytest.raises(SimulationError, match="invalid label name"):
            registry.gauge("ok", "x", lambda: 0, **{"bad-label": 1})
        with pytest.raises(SimulationError, match="both"):
            registry.gauge("repro_retries_total", "x", lambda: 0, a=1)
        with pytest.raises(SimulationError, match="duplicate series"):
            registry.counter("repro_retries_total", "Attempt retries",
                             lambda: 0)
        with pytest.raises(SimulationError, match="duplicate series"):
            registry.gauge("repro_queue_depth", "Waiting monotasks",
                           lambda: 9, machine=0, resource="disk0")
        with pytest.raises(SimulationError, match="conflicting help"):
            registry.gauge("repro_queue_depth", "Different story",
                           lambda: 0, machine=2, resource="cpu")
        with pytest.raises(SimulationError, match="reserved"):
            registry.gauge("ok", "x", lambda: 0, **{"__name__": "x"})
        # A new labeled series under an existing metric with matching
        # help text and kind is fine.
        registry.gauge("repro_queue_depth", "Waiting monotasks",
                       lambda: 1, machine=2, resource="cpu")

    def test_sampler_cadence(self):
        ctx = run_shuffle("monospark", num_blocks=2)
        env = ctx.engine.env
        registry = TelemetryRegistry()
        ticks = []
        registry.gauge("repro_clock", "Sampler tick probe",
                       lambda: ticks.append(env.now) or env.now)
        sampler = TelemetrySampler(env, registry, interval_s=2.0)
        start = env.now
        sampler.start()
        sampler.start()  # idempotent
        done = env.timeout(5.0)
        env.run(until=done)
        sampler.stop()
        env.run()  # drain the sampler's pending tick
        assert ticks == [pytest.approx(start + dt) for dt in (0.0, 2.0, 4.0)]
        history = registry.history("repro_clock")
        assert [t for t, _ in history] == ticks

    def test_bad_interval_rejected(self):
        with pytest.raises(SimulationError, match="interval"):
            TelemetrySampler(None, TelemetryRegistry(), interval_s=0.0)


def assert_well_formed(metrics, job_id):
    """The span-tree well-formedness property."""
    spans = metrics.spans_for_job(job_id)
    assert spans, "job produced no spans"
    by_id = {span.span_id: span for span in spans}
    assert len(by_id) == len(spans), "duplicate span ids"
    roots = [span for span in spans if span.parent_id is None]
    assert len(roots) == 1 and roots[0].kind == SPAN_JOB

    parent_kind = {SPAN_STAGE: SPAN_JOB, SPAN_ATTEMPT: SPAN_STAGE,
                   SPAN_MONOTASK: SPAN_ATTEMPT}
    for span in spans:
        assert span.finished, f"span {span.span_id} never closed"
        assert span.start <= span.end
        assert span.trace_id == metrics.job_trace_id(job_id)
        if span.parent_id is not None:
            parent = by_id.get(span.parent_id)
            assert parent is not None, \
                f"span {span.span_id} parent {span.parent_id} missing"
            assert parent.kind == parent_kind[span.kind]
        # Walk to the root: terminates (no cycles) within |spans| hops.
        seen = set()
        node = span
        while node.parent_id is not None:
            assert node.span_id not in seen, "cycle in span tree"
            seen.add(node.span_id)
            node = by_id[node.parent_id]
        assert node.kind == SPAN_JOB

    for link in metrics.links_for_job(job_id):
        assert link.from_span_id in by_id
        assert link.to_span_id in by_id
        assert link.from_span_id != link.to_span_id


class TestSpanTreeProperty:
    @pytest.mark.parametrize("seed", range(5))
    def test_random_plans_monospark(self, seed):
        rng = random.Random(seed)
        ctx = run_shuffle(
            "monospark",
            num_blocks=rng.randrange(2, 9),
            modulus=rng.randrange(1, 5),
            num_partitions=rng.randrange(1, 5),
            records_per_block=rng.randrange(1, 4),
            seed=seed)
        assert_well_formed(ctx.metrics, ctx.last_result.job_id)

    @pytest.mark.parametrize("seed", range(3))
    def test_random_plans_spark(self, seed):
        rng = random.Random(100 + seed)
        ctx = run_shuffle(
            "spark",
            num_blocks=rng.randrange(2, 9),
            modulus=rng.randrange(1, 5),
            num_partitions=rng.randrange(1, 5),
            records_per_block=rng.randrange(1, 4),
            seed=seed)
        metrics = ctx.metrics
        assert_well_formed(metrics, ctx.last_result.job_id)
        kinds = {span.kind
                 for span in metrics.spans_for_job(ctx.last_result.job_id)}
        assert SPAN_MONOTASK not in kinds  # blended engine: no leaves
