"""Capacity planning with the monotasks model (§6).

The questions from the paper's introduction: *What hardware should I run
on?  Is it worth it to get enough memory to cache on-disk data?  How
much will upgrading the disks improve performance?*

Run the workload ONCE on MonoSpark, then answer every question from the
monotask self-reports -- no reruns, no offline training (contrast with
Ernest/CherryPick, §2.2).

Run:  python examples/whatif_capacity_planning.py
"""

from repro import AnalyticsContext, GB, hdd_cluster
from repro.config import SSD
from repro.model import WhatIf, hardware_profile, predict, profile_job
from repro.workloads.scaling import scaled_memory_overrides
from repro.workloads.sortgen import SortWorkload, generate_sort_input, run_sort

FRACTION = 0.05


def main():
    # Measure once: a 600 GB-class sort on 20 machines with 2 HDDs.
    cluster = hdd_cluster(num_machines=20,
                          **scaled_memory_overrides(FRACTION))
    workload = SortWorkload(total_bytes=600 * GB * FRACTION,
                            values_per_key=25, num_map_tasks=480)
    generate_sort_input(cluster, workload)
    ctx = AnalyticsContext(cluster, engine="monospark")
    result = run_sort(ctx, workload)

    profiles = profile_job(ctx.metrics, result.job_id)
    hardware = hardware_profile(cluster)
    print(f"measured: {result.duration:.1f}s on {cluster.describe()}\n")
    for profile in profiles:
        print(f"  stage {profile.stage_id} ({profile.name}): "
              f"{profile.measured_duration_s:.1f}s, "
              f"{profile.compute_s:.0f} core-s CPU, "
              f"{profile.total_disk_bytes / GB:.1f} GB disk, "
              f"{profile.network_bytes / GB:.1f} GB network")
    print()

    questions = [
        ("twice as many disks (4 HDDs)?",
         WhatIf(hardware=hardware.scaled(disks_per_machine=4))),
        ("swap HDDs for SSDs?",
         WhatIf(hardware=hardware.scaled(
             disk_throughput_bps=SSD.throughput_bps))),
        ("a 2x larger cluster (40 machines)?",
         WhatIf(hardware=hardware.scaled(machines=40))),
        ("10x faster network?",
         WhatIf(hardware=hardware.scaled(
             network_bps=hardware.network_bps * 10))),
        ("enough memory to cache input, deserialized?",
         WhatIf(input_in_memory_deserialized=True)),
    ]
    print("what-if predictions (one measured run, zero reruns):")
    for question, what_if in questions:
        prediction = predict(profiles, result.duration, hardware, what_if)
        speedup = result.duration / prediction.predicted_s
        print(f"  {question:48s} -> {prediction.predicted_s:7.1f}s "
              f"({speedup:4.2f}x)")


if __name__ == "__main__":
    main()
