"""Always-on clarity: live cluster bottlenecks and capacity advice.

One seeded sort stream is served with the clarity pipeline attached.
As jobs finish, a `ClarityAggregator` folds each one's critical-path
attribution into a rolling window that answers the operator's question
continuously -- *which resource, on which machine, is the cluster's
bottleneck right now?* -- and a `CapacityAdvisor` ranks candidate
capacity changes (add a disk, HDD->SSD, 2x network, +/-1 machine, input
in memory) by predicted p95 service time, the paper's §6.2 what-if
machinery applied to a whole serving window.

The same stream on Spark shows the §6.6 contrast: blended tasks admit
no decomposition, and both the window and the advisor say so explicitly
instead of fabricating numbers.

Run:  python examples/clarity_pipeline.py
"""

from repro import AnalyticsContext
from repro.clarity import CapacityAdvisor, ClarityAggregator
from repro.cluster import hdd_cluster
from repro.model import hardware_profile
from repro.serve import JobServer, PoissonArrivals, sort_template
from repro.workloads.scaling import scaled_memory_overrides

SEED = 0
DURATION_S = 120.0


def serve_with_clarity(engine):
    cluster = hdd_cluster(num_machines=4, num_disks=2, seed=SEED,
                          **scaled_memory_overrides(0.01))
    ctx = AnalyticsContext(cluster, engine=engine,
                           scheduling_policy="fair")
    aggregator = ClarityAggregator(window_s=DURATION_S * 10,
                                   engine=ctx.engine.name)
    server = JobServer(ctx, policy="fifo", max_concurrent_jobs=1,
                       seed=SEED, clarity=aggregator)
    server.add_tenant("analytics")
    server.add_workload(
        "analytics",
        sort_template(ctx, total_gb=0.5, num_tasks=32, seed=SEED),
        PoissonArrivals(rate_per_s=0.05, horizon_s=DURATION_S))
    server.run()
    return ctx, aggregator


def main():
    for engine in ("monospark", "spark"):
        ctx, aggregator = serve_with_clarity(engine)
        print(f"=== {engine} ===")
        print(aggregator.bottleneck().format())
        print()
        advisor = CapacityAdvisor(hardware_profile(ctx.cluster))
        print(advisor.advise(aggregator.observations()).format())
        print()
    print("Same stream, same cluster: monospark's window decomposes into "
          "resources and yields a ranked capacity plan; spark's is "
          "explicitly not attributable.")


if __name__ == "__main__":
    main()
