"""Streaming alerts: name the sick machine while the incident unfolds.

The health monitor (gray_failure.py) eventually *excludes* a fail-slow
machine -- but exclusion is a deliberate, evidence-gathering decision.
The observability plane pages earlier: burn-rate rules notice the
tenant's SLO budget burning within a couple of jobs, per-machine
relative-rate rules name the machine that owns the slow NIC, and each
firing alert carries an exemplar -- the critical-path span of the worst
recent job -- so the on-call jumps straight from the alert to the span
that paid for the slowdown.  Every transition also lands in a unified
event journal next to the fault injection and the health monitor's own
decisions, in severity order, on simulated time: the same seed replays
the identical timeline.

Run:  python examples/alerting.py
"""

from repro import AnalyticsContext, hdd_cluster
from repro.faults import FaultInjector, fail_slow_plan
from repro.health import HealthMonitor, HealthPolicy
from repro.obs import ObservabilityPlane, format_labels
from repro.serve import JobServer, TraceArrivals, wordcount_template

MACHINES = 4
DEGRADE_MACHINE = 1
DEGRADE_AT = 5.0
FACTOR = 10.0
JOBS = 12
PERIOD_S = 2.5
SLO_S = 3.0


def main():
    cluster = hdd_cluster(num_machines=MACHINES, num_disks=2, seed=1)
    ctx = AnalyticsContext(cluster, engine="monospark")
    plan = fail_slow_plan(machine_id=DEGRADE_MACHINE, at=DEGRADE_AT,
                          factor=FACTOR)
    FaultInjector(ctx.engine, plan).start()
    monitor = HealthMonitor(ctx.engine, HealthPolicy())
    obs = ObservabilityPlane()
    server = JobServer(ctx, seed=1, health=monitor, obs=obs)
    server.add_tenant("analytics", slo_s=SLO_S)
    template = wordcount_template(ctx, num_blocks=MACHINES, block_mb=16.0)
    server.add_workload(
        "analytics", template,
        TraceArrivals([1.0 + PERIOD_S * i for i in range(JOBS)]))

    print(f"== machine {DEGRADE_MACHINE} NIC degraded {FACTOR:g}x at "
          f"t={DEGRADE_AT:.0f}s; tenant 'analytics' holds a "
          f"{SLO_S:g}s SLO ==\n")
    report = server.run()
    obs.close()

    print("alert timeline (what the on-call sees, in order):")
    for record in obs.alert_timeline():
        value = ("" if record.value != record.value
                 else f" value={record.value:.2f}")
        exemplar = (f"  exemplar={record.trace_id}/{record.span_id}"
                    if record.span_id >= 0 else "")
        print(f"  t={record.at:6.2f}  {record.kind:9s} "
              f"{record.rule}{{{record.labels}}}{value}{exemplar}")

    timeline = obs.alert_timeline()
    first_fire = next(r for r in timeline if r.kind == "firing")
    exclude = ctx.metrics.health_records(kind="exclude")[0]
    print(f"\nfirst alert fired at t={first_fire.at:.1f}s "
          f"({first_fire.rule}{{{first_fire.labels}}}); the health "
          f"monitor excluded machine {exclude.machine_id} at "
          f"t={exclude.at:.1f}s -- the alert led the exclusion by "
          f"{exclude.at - first_fire.at:.1f}s.")

    fired = [r for r in timeline if r.kind == "firing" and r.span_id >= 0]
    worst = fired[0]
    spans = {s.span_id: s for s in
             ctx.metrics.spans_for_job(int(worst.trace_id.split("-")[1]))}
    span = spans[worst.span_id]
    print(f"the exemplar resolves to a real span: {worst.trace_id}/"
          f"{worst.span_id} is '{span.name}' "
          f"[{span.start:.2f}s, {span.end:.2f}s] -- "
          f"the worst critical-path contributor behind the page.")

    verdicts = obs.drift_verdicts()
    drifting = [v for v in verdicts if v.drifting]
    print(f"\nmodel drift: {len(verdicts)} completed jobs scored "
          f"against the ideal model; {len(drifting)} outside the "
          f"envelope (template-calibrated, so the small-job bias does "
          f"not page).")

    still = [f"{a.rule}{{{format_labels(a.labels)}}}"
             for a in obs.firing()]
    print(f"still firing at drain: {', '.join(still) or 'none'}")

    print(f"\nunified event journal (faults, health, alerts -- one "
          f"severity-leveled stream):")
    print(obs.journal.format())

    print(f"\nserved {report.total_completed} jobs; the same seed "
          f"replays this timeline byte-for-byte.")


if __name__ == "__main__":
    main()
