"""Gray failure: a machine that is slow, not dead -- and who can tell.

A NIC that silently drops to a tenth of its bandwidth is worse than a
crash: nothing times out, every job still finishes, and in an all-to-all
shuffle *every* machine's fetches slow down, because they all pull data
through the sick uplink.  This example degrades one machine's NIC
mid-stream and runs the online health monitor on both engines:

* MonoSpark's estimator sees per-resource monotask rates, and its fetch
  monotask times each source machine's response flow separately -- so
  the slow uplink is pinned on the machine that owns it, which gets
  excluded, and latency recovers.
* Spark's estimator has only blended task wall-clock.  The degradation
  slows all machines' tasks roughly equally, so nothing ever falls
  below the cluster-typical rate: the baseline never even finds a
  suspect, and every job stays slow.

Run:  python examples/gray_failure.py
"""

from repro import AnalyticsContext, hdd_cluster
from repro.faults import FaultInjector, fail_slow_plan
from repro.health import HealthMonitor, HealthPolicy
from repro.serve import wordcount_template
from repro.workloads.scaling import scaled_memory_overrides

FRACTION = 0.01
MACHINES = 4
DEGRADE_MACHINE = 1
DEGRADE_AT = 5.0
FACTOR = 10.0
JOBS = 10


def run(engine):
    cluster = hdd_cluster(num_machines=MACHINES, num_disks=2, seed=42,
                          **scaled_memory_overrides(FRACTION))
    ctx = AnalyticsContext(cluster, engine=engine)
    env = ctx.engine.env
    plan = fail_slow_plan(machine_id=DEGRADE_MACHINE, at=DEGRADE_AT,
                          factor=FACTOR)
    FaultInjector(ctx.engine, plan).start()
    monitor = HealthMonitor(ctx.engine, HealthPolicy())
    monitor.start()
    template = wordcount_template(ctx, num_blocks=8, block_mb=32.0, seed=42)
    durations = []
    for _ in range(JOBS):
        driver = ctx.engine.submit_job(template.instantiate(ctx))
        start = env.now
        env.run(until=driver)
        durations.append(env.now - start)
    monitor.stop()
    env.run()
    return ctx, durations


def main():
    for engine in ("monospark", "spark"):
        ctx, durations = run(engine)
        print(f"== {engine}: machine {DEGRADE_MACHINE} NIC degraded "
              f"{FACTOR:g}x at t={DEGRADE_AT:.0f}s ==")
        print("job durations: "
              + "  ".join(f"{d:.1f}s" for d in durations))
        events = ctx.metrics.health_events
        if events:
            print("health events:")
            for h in events:
                relative = ("" if h.relative_rate != h.relative_rate
                            else f" rel={h.relative_rate:.2f}")
                resource = f" {h.resource}" if h.resource else ""
                print(f"  t={h.at:6.1f}  {h.kind:10s} "
                      f"machine {h.machine_id}{resource}{relative}")
            excluded = sorted(ctx.engine.excluded_machines)
            print(f"excluded at end: {excluded if excluded else 'none'}")
        else:
            print("health events: none -- task-level rates slowed "
                  "uniformly, so the baseline cannot find the sick "
                  "machine")
        print()


if __name__ == "__main__":
    main()
