"""Causal tracing: which chain of waits and work set this job's runtime?

The paper's thesis is performance *clarity*: because every monotask
uses exactly one resource, the framework can explain where time went.
This example runs the same shuffle word count on both engines with full
span tracing and live telemetry enabled, then asks the clarity question:

* MonoSpark's span tree has per-resource monotask leaves, so the
  critical-path walk decomposes the job's wall clock into cpu, disk,
  disk-queue, and network segments per machine -- and the segments sum
  to the job's duration exactly.
* Spark's spans stop at blended task attempts; the same walk still
  partitions the window, but every segment is the pseudo-resource
  ``task`` and the report says NOT ATTRIBUTABLE instead of pretending.

Along the way the run streams every span to a JSONL sink, samples
telemetry gauges once per simulated second, exports a Chrome/Perfetto
trace (with shuffle flow arrows and driver-side job/stage spans), and
prints a Prometheus text-exposition snapshot.

Run:  python examples/tracing.py
Artifacts land in $REPRO_TRACE_DIR (default: the system temp dir).
"""

import os
import tempfile

from repro import AnalyticsContext, MB, hdd_cluster
from repro.metrics.chrometrace import write_chrome_trace
from repro.trace import (JsonlSpanSink, TelemetryRegistry, TelemetrySampler,
                         critical_path, render_prometheus)
from repro.workloads.wordcount import generate_text_input, word_count

MACHINES = 2
SEED = 42
OUT_DIR = os.environ.get("REPRO_TRACE_DIR", tempfile.gettempdir())


def run(engine):
    cluster = hdd_cluster(num_machines=MACHINES, num_disks=2, seed=SEED)
    generate_text_input(cluster, num_blocks=MACHINES * 4,
                        block_bytes=64 * MB, seed=SEED)
    ctx = AnalyticsContext(cluster, engine=engine)

    spans_path = os.path.join(OUT_DIR, f"tracing-{engine}-spans.jsonl")
    sink = JsonlSpanSink(spans_path)
    ctx.metrics.add_span_sink(sink)

    registry = TelemetryRegistry()
    ctx.engine.register_telemetry(registry)
    sampler = TelemetrySampler(ctx.engine.env, registry, interval_s=1.0)
    sampler.start()

    word_count(ctx)

    sampler.stop()
    sink.close()
    return ctx, registry, spans_path


def main():
    snapshot = None
    for engine in ("monospark", "spark"):
        ctx, registry, spans_path = run(engine)
        if engine == "monospark":
            snapshot = (registry, ctx.engine.env.now)
        job_id = ctx.last_result.job_id
        print(f"== {engine} ==")

        spans = ctx.metrics.spans_for_job(job_id)
        links = ctx.metrics.links_for_job(job_id)
        by_kind = {}
        for span in spans:
            by_kind[span.kind] = by_kind.get(span.kind, 0) + 1
        kinds = "  ".join(f"{kind}={count}"
                          for kind, count in sorted(by_kind.items()))
        print(f"spans: {len(spans)} ({kinds}), links: {len(links)}")
        print(f"span stream: {spans_path}")

        trace_path = os.path.join(OUT_DIR, f"tracing-{engine}.json")
        result = write_chrome_trace(ctx.metrics, trace_path, job_id=job_id)
        print(f"chrome trace: {result.events} events -> {result.path}")

        # The clarity question: decompose the critical path, or admit
        # you cannot.
        print(critical_path(ctx.metrics, job_id, engine=engine).format())

        series = registry.read()
        total = sum(len(points) for points in series.values())
        print(f"telemetry: {total} series across {len(series)} metrics, "
              f"{len(registry.samples)} samples recorded")
        if engine == "monospark":
            print("per-resource queue-depth gauges exist only here; the "
                  "blended engine has no per-resource queues to sample")
        print()

    # The exposition format the gauges export in (post-run, so the
    # queues have drained back to zero).
    print("== Prometheus snapshot (monospark, end of run) ==")
    registry, now = snapshot
    text = render_prometheus(registry, now=now)
    wanted = ("repro_pending_tasks", "repro_resource_queue_depth")
    for line in text.splitlines():
        if any(line.startswith(f"# {kind} {name}") or line.startswith(name)
               for name in wanted for kind in ("HELP", "TYPE")):
            print(line)


if __name__ == "__main__":
    main()
