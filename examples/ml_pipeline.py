"""A network-bound ML pipeline: least squares by block coordinate descent.

The paper's third workload (§5.2, Figure 7): native-code matrix math,
in-memory shuffle, lots of network.  Demonstrates cached RDDs, in-memory
shuffles, and that monotask reports attribute time correctly even when
no disk is involved.

Run:  python examples/ml_pipeline.py
"""

from repro import GB
from repro.cluster import ssd_cluster
from repro.metrics.events import CPU, NETWORK
from repro.workloads.ml import MlWorkload, make_ml_context, run_ml_workload


def main():
    workload = MlWorkload()  # 1M x 4096 matrix over 120 row blocks
    print(f"matrix: {workload.rows:.0f} x {workload.cols} "
          f"({workload.matrix_bytes / GB:.1f} GB), "
          f"{workload.num_row_blocks} row blocks\n")

    for engine in ("spark", "monospark"):
        ctx = make_ml_context(ssd_cluster(num_machines=15), engine,
                              workload)
        results = run_ml_workload(ctx, iterations=3)
        times = ", ".join(f"{r.duration:.2f}s" for r in results)
        print(f"{engine:10s} iterations: {times}")

        if engine == "monospark":
            job = results[-1].job_id
            cpu_s = sum(m.duration for m in ctx.metrics.stage_monotasks(job)
                        if m.resource == CPU)
            net_gb = sum(m.nbytes for m in ctx.metrics.stage_monotasks(job)
                         if m.resource == NETWORK) / GB
            print(f"\nper-iteration monotask totals: {cpu_s:.0f} core-s "
                  f"CPU, {net_gb:.1f} GB over the network, 0 disk bytes")
            print("(disk column is empty by construction: cached input + "
                  "in-memory shuffle)")


if __name__ == "__main__":
    main()
