"""Why did my workload run slowly? -- finding a degraded machine.

One of the paper's motivating questions (§1): "Is hardware degradation
leading to poor performance?"  A disk on machine 7 silently slows to a
third of its rated speed; with monotask self-reports, the culprit falls
out of the data the framework already collects.

Run:  python examples/diagnose_degradation.py
"""

from repro import AnalyticsContext, GB, hdd_cluster
from repro.config import MB
from repro.model import diagnose_stragglers
from repro.workloads.scaling import scaled_memory_overrides
from repro.workloads.sortgen import SortWorkload, generate_sort_input, run_sort

FRACTION = 0.03
SLOW_MACHINE = 7


def run(degraded):
    cluster = hdd_cluster(num_machines=10,
                          **scaled_memory_overrides(FRACTION))
    if degraded:
        cluster.degrade_machine(SLOW_MACHINE, disk_factor=0.3)
    workload = SortWorkload(total_bytes=600 * GB * FRACTION,
                            values_per_key=25, num_map_tasks=240)
    generate_sort_input(cluster, workload)
    ctx = AnalyticsContext(cluster, engine="monospark")
    result = run_sort(ctx, workload)
    return ctx, result


def main():
    _, healthy_result = run(degraded=False)
    ctx, degraded_result = run(degraded=True)
    slowdown = degraded_result.duration / healthy_result.duration
    print(f"healthy run:  {healthy_result.duration:.1f}s")
    print(f"degraded run: {degraded_result.duration:.1f}s "
          f"({slowdown:.2f}x slower) -- but why?\n")

    report = diagnose_stragglers(ctx.metrics, degraded_result.job_id)
    print(f"{'machine':>8s} {'disk MB/s':>10s} {'cpu slowdown':>13s}")
    for machine_id, health in sorted(report.machines.items()):
        flag = "  <-- straggler" if machine_id in report.slow_disks else ""
        print(f"{machine_id:8d} {health.disk_bps / MB:10.1f} "
              f"{health.cpu_slowdown or 1.0:13.2f}{flag}")
    print(f"\nmedian disk rate: {report.median_disk_bps / MB:.1f} MB/s")
    print(f"diagnosis: slow disks on machines {report.slow_disks}, "
          f"slow CPUs on {report.slow_cpus}")
    print("\nEvery number above came from monotask self-reports -- the")
    print("instrumentation the execution model provides for free (§6).")


if __name__ == "__main__":
    main()
