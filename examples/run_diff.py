"""Why is run B slower than run A?  Record two capsules and diff them.

The paper gives one run performance clarity: per-resource monotask
spans let the critical path say exactly where a job's time went.  This
example makes that *comparative*.  It records the canonical serving
stream twice -- once clean, once with machine 1's NIC degraded 10x
mid-run -- each into a self-contained run capsule, then:

* queries the degraded capsule like a trace-analytics store (p95
  monotask duration by machine; RED-style per-tenant rates),
* diffs the two capsules into ranked ``resource x machine x phase``
  blame -- the injected NIC shows up as the #1 delta, network on
  machine 1 during shuffle-fetch, with an exemplar span link,
* repeats the diff on Spark capsules, where the same alignment and
  totals work but the report says NOT ATTRIBUTABLE (Section 6.6's
  contrast, in differential form).

Capsules are deterministic artifacts: re-recording with the same seed
is byte-identical, so a committed capsule doubles as a CI regression
baseline (``repro xray regress``).

Run:  python examples/run_diff.py
Artifacts land in $REPRO_TRACE_DIR (default: the system temp dir).
"""

import os
import tempfile

from repro.xray import CanonicalRun, CapsuleQuery, diff_capsules, record_run

OUT_DIR = os.environ.get("REPRO_TRACE_DIR", tempfile.gettempdir())
SLOW_MACHINE = 1


def main():
    run = CanonicalRun(jobs=6)  # the canonical workload, trimmed a bit
    clean_path = os.path.join(OUT_DIR, "run-diff-clean.capsule")
    degraded_path = os.path.join(OUT_DIR, "run-diff-degraded.capsule")

    print("== record: clean run A, degraded run B ==")
    clean = record_run(clean_path, run)
    degraded = record_run(degraded_path, run.degraded(machine=SLOW_MACHINE))
    print(clean.describe())
    print(degraded.describe())
    print()

    print("== query run B: monotask seconds by machine ==")
    query = CapsuleQuery(degraded)
    rows = query.aggregate(group_by="machine")
    print(query.format_aggregate(rows, "machine", "duration"))
    print()
    print("== query run B: RED per-tenant rates ==")
    print(query.format_rates(query.tenant_rates()))
    print()

    print("== diff: why is B slower than A? ==")
    report = diff_capsules(clean, degraded)
    print(report.format())
    print()

    print("== the Spark contrast: blended tasks cannot be blamed ==")
    spark = CanonicalRun(engine="spark", jobs=6)
    spark_clean = record_run(
        os.path.join(OUT_DIR, "run-diff-spark-clean.capsule"), spark)
    spark_degraded = record_run(
        os.path.join(OUT_DIR, "run-diff-spark-degraded.capsule"),
        spark.degraded(machine=SLOW_MACHINE))
    print(diff_capsules(spark_clean, spark_degraded).format())


if __name__ == "__main__":
    main()
