"""Sharded drivers -- a crash that loses nothing, and an election.

One driver is a throughput ceiling and a single point of failure: every
dispatch serializes through its admission loop, and when it dies its
queued and in-flight requests die with it.  This example runs the same
four-tenant stream twice on a two-driver `ControlPlane`, crashing the
leader replica mid-run both times.

With checkpointed failover ON, the survivor misses heartbeats, wins the
bully election, adopts the dead shard from its replicated checkpoints,
and *resumes* the in-flight engine jobs (the task pool never stopped
them) -- zero requests lost.  With failover OFF the identical crash
loses every request the dead driver held or receives afterwards.

Run:  python examples/driver_failover.py
"""

from repro import AnalyticsContext, hdd_cluster
from repro.controlplane import ControlPlane, ControlPlanePolicy
from repro.faults import DriverCrash, FaultInjector, FaultPlan
from repro.serve import PoissonArrivals, wordcount_template

NUM_DRIVERS = 2
CRASH_DRIVER = NUM_DRIVERS - 1  # the initial leader: forces an election
CRASH_AT = 20.0
TENANTS = 4
RATE_PER_S = 0.5
HORIZON_S = 40.0


def run(failover):
    cluster = hdd_cluster(num_machines=4, seed=2)
    ctx = AnalyticsContext(cluster, engine="monospark")
    policy = ControlPlanePolicy(control_service_s=0.05,
                                checkpoint=failover, failover=failover)
    plane = ControlPlane(ctx, num_drivers=NUM_DRIVERS, config=policy,
                         seed=2)
    template = wordcount_template(ctx, num_blocks=2, block_mb=4.0)
    for i in range(TENANTS):
        plane.add_workload(f"tenant{i}", template,
                           PoissonArrivals(RATE_PER_S,
                                           horizon_s=HORIZON_S))
    plan = FaultPlan([DriverCrash(at=CRASH_AT, driver_id=CRASH_DRIVER)])
    FaultInjector(ctx.engine, plan).start()
    return plane.run()


def main():
    print("-- leader crash, checkpointed failover ON ".ljust(66, "-"))
    report = run(failover=True)
    counters = report.counters
    summary = report.failovers[0]
    print(f"driver d{CRASH_DRIVER} (the leader) crashed at "
          f"{CRASH_AT:.0f}s; driver d{report.leader_id} won the election "
          f"(epoch {report.leader_epoch:.0f}).")
    print(f"adopted {len(summary.tenants)} tenant(s) in "
          f"{summary.duration_s * 1000:.0f} ms: "
          f"{summary.restored} checkpoint(s) restored, "
          f"{summary.resumed} in-flight job(s) resumed, "
          f"{summary.replayed} replayed, {summary.lost} lost.")
    print(f"{report.total_completed} requests completed, "
          f"{report.jobs_lost} lost "
          f"({counters['checkpoint_writes']:g} checkpoint writes, "
          f"{counters['checkpoint_bytes']:g} bytes).")
    assert report.jobs_lost == 0, "failover must lose nothing"
    assert summary.resumed > 0, "in-flight jobs must be resumed, not rerun"
    print()

    print("-- the same crash, failover OFF ".ljust(66, "-"))
    report = run(failover=False)
    print(f"{report.total_completed} requests completed, "
          f"{report.jobs_lost} lost with the driver.")
    assert report.jobs_lost > 0
    print()
    print("same stream, same crash: checkpointed failover turned "
          f"{report.jobs_lost} lost requests into zero.")


if __name__ == "__main__":
    main()
