"""Surviving a mid-job machine crash -- fault injection and recovery.

The paper's framework inherits Spark's fault-tolerance story (§4: "like
Spark, MonoSpark re-executes tasks to recover from failures").  This
example kills one worker partway through a sort: its in-flight attempts
die, its shuffle output vanishes, and the engine recovers by re-running
the lost map tasks from lineage -- all visible in the attempt log the
framework already keeps.

Run:  python examples/fault_recovery.py
"""

from repro import AnalyticsContext, GB, hdd_cluster
from repro.faults import FaultInjector, FaultPlan, MachineCrash
from repro.metrics.report import format_fault_report
from repro.workloads.scaling import scaled_memory_overrides
from repro.workloads.sortgen import (SortWorkload, generate_sort_input,
                                     run_sort)

FRACTION = 0.01
CRASH_MACHINE = 1
RESTART_AFTER = 15.0


def run(plan=None):
    cluster = hdd_cluster(num_machines=4,
                          **scaled_memory_overrides(FRACTION))
    workload = SortWorkload(total_bytes=600 * GB * FRACTION,
                            values_per_key=25, num_map_tasks=32)
    generate_sort_input(cluster, workload)
    ctx = AnalyticsContext(cluster, engine="monospark")
    if plan is not None:
        FaultInjector(ctx.engine, plan).start()
    result = run_sort(ctx, workload)
    return ctx, result


def main():
    _, healthy = run()
    print(f"fault-free run: {healthy.duration:.1f}s")

    crash_at = healthy.duration * 0.4
    plan = FaultPlan([MachineCrash(at=crash_at, machine_id=CRASH_MACHINE,
                                   restart_after=RESTART_AFTER)])
    ctx, crashed = run(plan)
    slowdown = crashed.duration / healthy.duration
    print(f"machine {CRASH_MACHINE} crashes at {crash_at:.1f}s, "
          f"restarts {RESTART_AFTER:.0f}s later: "
          f"{crashed.duration:.1f}s ({slowdown:.2f}x)\n")

    print(format_fault_report(ctx.metrics, crashed.job_id))
    print()

    killed = [a for a in ctx.metrics.attempts_for_job(crashed.job_id)
              if a.outcome == "killed"]
    fetch_failed = [a for a in ctx.metrics.attempts_for_job(crashed.job_id)
                    if a.outcome == "fetch-failed"]
    print(f"the crash killed {len(killed)} running attempts; "
          f"{len(fetch_failed)} reducers hit missing map output and")
    print("waited while the engine re-ran the lost maps from lineage --")
    print("the job still finished with the fault-free answer.")


if __name__ == "__main__":
    main()
