"""The disaggregated data tier -- crash-proof shuffle, verified reads.

With shuffle output co-located on compute machines (the default), a
mid-job crash takes its map output with it and lineage re-executes the
lost maps.  This example attaches a `DataService` -- dedicated storage
nodes with 2x replication, write-behind caching, and CRC-checked reads
-- and shows the same crash costing nothing.  Then it corrupts one
stored replica and watches the checksum catch it: the read fails over
to the good copy, the block re-replicates, and the storage node picks
up an integrity suspicion in the health monitor.

Run:  python examples/data_service.py
"""

from repro import AnalyticsContext, hdd_cluster
from repro.datasvc import DataService
from repro.faults import (BlockCorruption, FaultInjector, FaultPlan,
                          MachineCrash)
from repro.health import HealthMonitor

CRASH_MACHINE = 1
CORRUPT_NODE = 0
NUM_NODES = 3
REPLICATION = 2
RECORDS = [f"w{i % 17} w{i % 11}" for i in range(4000)]


def run(disaggregated, plan=None, health=False):
    cluster = hdd_cluster(num_machines=4, seed=2)
    service = None
    options = {}
    if disaggregated:
        service = DataService(cluster, num_nodes=NUM_NODES,
                              replication=REPLICATION)
        options["datasvc"] = service
    ctx = AnalyticsContext(cluster, engine="monospark", **options)
    monitor = HealthMonitor(ctx.engine) if health else None
    if plan is not None:
        FaultInjector(ctx.engine, plan).start()
    rdd = ctx.parallelize(RECORDS, num_partitions=8)
    results = sorted(rdd.flat_map(lambda line: line.split())
                        .map(lambda word: (word, 1))
                        .reduce_by_key(lambda a, b: a + b)
                        .collect())
    return ctx, service, results, monitor


def outcomes(ctx):
    counts = ctx.metrics.attempt_outcome_counts(ctx.last_result.job_id)
    return {kind: count for kind, count in sorted(counts.items()) if count}


def main():
    ctx, _, expected, _ = run(disaggregated=False)
    map_end = min(s.end for s in
                  ctx.metrics.stage_records(ctx.last_result.job_id))
    crash_at = map_end * 1.02  # maps done, reduces mid-fetch
    plan = FaultPlan([MachineCrash(at=crash_at, machine_id=CRASH_MACHINE,
                                   restart_after=1.0)])

    print("-- compute crash, co-located shuffle ".ljust(66, "-"))
    ctx, _, results, _ = run(disaggregated=False, plan=plan)
    assert results == expected
    print(f"crash machine {CRASH_MACHINE} at {crash_at * 1000:.1f} ms: "
          f"{outcomes(ctx)}")
    print("the crash destroyed its map output; reducers fetch-failed and")
    print("lineage re-executed the lost maps.\n")

    print("-- the same crash, disaggregated shuffle ".ljust(66, "-"))
    ctx, service, results, _ = run(disaggregated=True, plan=plan)
    assert results == expected
    print(f"crash machine {CRASH_MACHINE} at {crash_at * 1000:.1f} ms: "
          f"{outcomes(ctx)}")
    stats = service.stats()
    print(f"map output lives on {NUM_NODES} storage nodes "
          f"({REPLICATION}x replicated): {stats['puts']:g} puts, "
          f"{stats['fetches']:g} fetches, zero lineage losses.\n")

    print("-- corrupt a stored replica ".ljust(66, "-"))
    plan = FaultPlan([BlockCorruption(at=crash_at * 0.3,
                                      node_index=CORRUPT_NODE)])
    ctx, service, results, monitor = run(disaggregated=True, plan=plan,
                                         health=True)
    assert results == expected
    stats = service.stats()
    print(f"checksum caught {stats['integrity_faults']:g} bad read(s); "
          f"{stats['failovers']:g} failover(s), "
          f"{stats['re_replications']:g} re-replication(s)")
    print(f"health monitor integrity suspicions (by machine id): "
          f"{monitor.integrity_suspicions}")
    print("the job never saw the corruption -- same answer, same bytes.")


if __name__ == "__main__":
    main()
