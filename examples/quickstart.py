"""Quickstart: word count on MonoSpark (the paper's Figure 1/4 job).

Runs the same job on the Spark-style engine and on MonoSpark, prints the
results (identical -- the API is engine-compatible), and shows the
monotask self-reports that make MonoSpark's performance legible.

Run:  python examples/quickstart.py
"""

from collections import defaultdict

from repro import AnalyticsContext, hdd_cluster, MB
from repro.metrics import format_seconds
from repro.workloads.wordcount import generate_text_input


def build_job(ctx):
    """spark.textFile(...).flatMap(split).map((w,1)).reduceByKey(+)"""
    return (ctx.text_file("text-input")
            .flat_map(lambda line: line.split(" "))
            .map(lambda word: (word, 1))
            .reduce_by_key(lambda a, b: a + b, num_partitions=4))


def main():
    counts = {}
    for engine in ("spark", "monospark"):
        cluster = hdd_cluster(num_machines=4)
        generate_text_input(cluster, num_blocks=8, block_bytes=64 * MB)
        ctx = AnalyticsContext(cluster, engine=engine)
        result = sorted(build_job(ctx).collect())[:5]
        counts[engine] = result
        print(f"{engine:10s} job took "
              f"{format_seconds(ctx.last_result.duration)} (simulated); "
              f"first counts: {result[:3]}")

    assert counts["spark"] == counts["monospark"], "engines must agree!"

    # Performance clarity: every monotask reported its resource use.
    print("\nMonotask self-reports (the instrumentation IS the execution "
          "model):")
    by_resource = defaultdict(lambda: [0, 0.0, 0.0])
    for record in ctx.metrics.monotasks:
        entry = by_resource[(record.resource, record.phase)]
        entry[0] += 1
        entry[1] += record.duration
        entry[2] += record.nbytes
    for (resource, phase), (count, seconds, nbytes) in sorted(
            by_resource.items()):
        print(f"  {resource:8s} {phase:14s} x{count:4d}  "
              f"{seconds:8.2f}s total  {nbytes / MB:9.1f} MB")


if __name__ == "__main__":
    main()
