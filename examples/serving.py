"""Continuous serving: a multi-tenant job stream with SLOs (repro.serve).

Two tenants share one cluster: an *interactive* tenant submitting small
word-count queries under a latency SLO, and a *batch* tenant submitting
CPU-bound ML iterations.  A machine crashes mid-stream and later
restarts.  The same request trace runs on both engines; the SLO report
shows where the paper's performance clarity matters in a serving
context -- MonoSpark attributes each tenant's queueing delay to a
specific resource, and its admission controller re-prices jobs on the
shrunken cluster after the crash, while Spark can only smooth past
runtimes.

Run:  python examples/serving.py
"""

from repro import AnalyticsContext
from repro.cluster import hdd_cluster
from repro.faults import FaultInjector, FaultPlan, MachineCrash
from repro.serve import (AdmissionController, JobServer, PoissonArrivals,
                         ml_template, wordcount_template)

SEED = 42
DURATION_S = 240.0


def serve_stream(engine):
    cluster = hdd_cluster(num_machines=4, num_disks=2)
    ctx = AnalyticsContext(cluster, engine=engine,
                           scheduling_policy="fair")
    crash = FaultPlan([MachineCrash(at=60.0, machine_id=1,
                                    restart_after=45.0)])
    FaultInjector(ctx.engine, crash).start()

    server = JobServer(ctx,
                       admission=AdmissionController(max_queued_jobs=6),
                       policy="weighted_fair", max_concurrent_jobs=3,
                       seed=SEED)
    server.add_tenant("interactive", weight=2.0, slo_s=30.0)
    server.add_tenant("batch", weight=1.0)
    server.add_workload(
        "interactive",
        wordcount_template(ctx, num_blocks=8, block_mb=32.0, seed=SEED),
        PoissonArrivals(rate_per_s=0.12, horizon_s=DURATION_S))
    server.add_workload(
        "batch",
        ml_template(ctx, num_partitions=4, seed=SEED),
        PoissonArrivals(rate_per_s=0.04, horizon_s=DURATION_S))
    return server.run()


def main():
    for engine in ("spark", "monospark"):
        report = serve_stream(engine)
        print(report.format())
        print()
    print("Same request trace, same crash: only the monospark report can "
          "say which resource the interactive tenant queued on.")


if __name__ == "__main__":
    main()
