"""Is performance affected by contention from other users? (§1)

A job runs alone, then again while a noisy neighbor hammers the same
cluster.  Monotask self-reports separate the two possible explanations
for the slowdown: the job's *own* resource demand (unchanged) versus the
time its monotasks spent queued at the per-resource schedulers (grown).
With Spark, Figure 16 shows this attribution is off by large factors;
with monotasks it falls out of the records.

Run:  python examples/tenant_contention.py
"""

from repro import AnalyticsContext, GB
from repro.api.plan import DfsOutput
from repro.cluster import hdd_cluster
from repro.metrics.events import CPU, DISK, NETWORK
from repro.workloads.scaling import scaled_memory_overrides
from repro.workloads.sortgen import SortWorkload, generate_sort_input
from repro.workloads.sortgen import sort_boundaries, PARTITION_S_PER_RECORD, SORT_S_PER_RECORD
from repro.api.ops import OpCost

FRACTION = 0.02


def build_sort_plan(ctx, workload, input_name, output_name, name):
    sorted_rdd = (ctx.text_file(input_name)
                  .map(lambda record: record,
                       cost=OpCost(per_record_s=PARTITION_S_PER_RECORD),
                       size_ratio=1.0)
                  .sort_by_key(num_partitions=workload.reduce_tasks,
                               boundaries=sort_boundaries(workload),
                               cost=OpCost(per_record_s=SORT_S_PER_RECORD)))
    return ctx.compile(sorted_rdd, DfsOutput(file_name=output_name),
                       name=name)


def job_footprint(ctx, job_id):
    """What the job itself consumed, and how long it waited in queues."""
    use = {"cpu_s": 0.0, "disk_gb": 0.0, "net_gb": 0.0, "queue_s": 0.0}
    for record in ctx.metrics.stage_monotasks(job_id):
        use["queue_s"] += record.queue_s
        if record.resource == CPU:
            use["cpu_s"] += record.duration
        elif record.resource == DISK:
            use["disk_gb"] += record.nbytes / GB
        elif record.resource == NETWORK:
            use["net_gb"] += record.nbytes / GB
    return use


def run(with_neighbor):
    cluster = hdd_cluster(num_machines=5,
                          **scaled_memory_overrides(FRACTION))
    victim = SortWorkload(total_bytes=120 * GB * FRACTION,
                          values_per_key=25, num_map_tasks=60)
    generate_sort_input(cluster, victim, name="victim-in", seed=1)
    ctx = AnalyticsContext(cluster, engine="monospark",
                           scheduling_policy="fair")
    plans = [build_sort_plan(ctx, victim, "victim-in", "victim-out",
                             "victim")]
    if with_neighbor:
        neighbor = SortWorkload(total_bytes=480 * GB * FRACTION,
                                values_per_key=10, num_map_tasks=240)
        generate_sort_input(cluster, neighbor, name="noisy-in", seed=2)
        plans.append(build_sort_plan(ctx, neighbor, "noisy-in",
                                     "noisy-out", "noisy"))
    results = ctx.run_jobs(plans)
    return ctx, results[0]


def main():
    alone_ctx, alone = run(with_neighbor=False)
    shared_ctx, shared = run(with_neighbor=True)
    print(f"victim alone:          {alone.duration:7.1f}s")
    print(f"victim with neighbor:  {shared.duration:7.1f}s "
          f"({shared.duration / alone.duration:.2f}x)\n")

    alone_use = job_footprint(alone_ctx, alone.job_id)
    shared_use = job_footprint(shared_ctx, shared.job_id)
    print(f"{'':24s}{'alone':>10s}{'contended':>12s}")
    print(f"{'own CPU seconds':24s}{alone_use['cpu_s']:10.1f}"
          f"{shared_use['cpu_s']:12.1f}")
    print(f"{'own disk GB':24s}{alone_use['disk_gb']:10.1f}"
          f"{shared_use['disk_gb']:12.1f}")
    print(f"{'own network GB':24s}{alone_use['net_gb']:10.1f}"
          f"{shared_use['net_gb']:12.1f}")
    print(f"{'time queued (s, total)':24s}{alone_use['queue_s']:10.1f}"
          f"{shared_use['queue_s']:12.1f}")
    print("\nThe job's own demand is unchanged; the slowdown is queueing")
    print("behind another tenant -- contention made visible as queue time")
    print("at the per-resource schedulers (§3.1).")


if __name__ == "__main__":
    main()
