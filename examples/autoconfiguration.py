"""What software configuration should I use? -- none (§7).

Spark users must tune tasks-per-machine; the ideal value is workload-
dependent.  MonoSpark's per-resource schedulers configure concurrency
automatically.  This sweep reproduces Figure 18 at small scale.

Run:  python examples/autoconfiguration.py
"""

from repro import AnalyticsContext, GB, hdd_cluster
from repro.autoconf import sweep_spark_concurrency
from repro.workloads.scaling import scaled_memory_overrides
from repro.workloads.sortgen import SortWorkload, generate_sort_input, run_sort

FRACTION = 0.02
SLOTS = (2, 4, 8, 16)


def sweep(values_per_key):
    workload = SortWorkload(total_bytes=600 * GB * FRACTION,
                            values_per_key=values_per_key,
                            num_map_tasks=160)

    def make_cluster():
        cluster = hdd_cluster(num_machines=10,
                              **scaled_memory_overrides(FRACTION))
        generate_sort_input(cluster, workload)
        return cluster

    return sweep_spark_concurrency(make_cluster,
                                   lambda ctx: run_sort(ctx, workload),
                                   slot_options=SLOTS)


def main():
    header = "workload     " + "".join(f"spark-{s:<4d}" for s in SLOTS) \
        + "monospark   verdict"
    print(header)
    print("-" * len(header))
    for values in (1, 25, 100):
        result = sweep(values)
        cells = "".join(f"{result.spark_seconds[s]:<10.1f}" for s in SLOTS)
        verdict = (f"mono = {result.monospark_vs_best_spark:.2f}x best "
                   f"spark (slots={result.best_spark_slots})")
        print(f"{values:3d} longs    {cells}{result.monospark_seconds:<12.1f}"
              f"{verdict}")
    print("\nMonoSpark needs no concurrency knob: each per-resource")
    print("scheduler admits exactly what its resource can run (§3.3).")


if __name__ == "__main__":
    main()
