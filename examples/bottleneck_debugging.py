"""Why did my workload run slowly? (§6.5 bottleneck analysis)

Runs two Big Data Benchmark queries on MonoSpark and answers, per query:
which resource is the bottleneck, and how much faster would the query be
with an infinitely fast disk / network / CPU -- the NSDI'15 blocked-time
analysis, straight from monotask self-reports.

Run:  python examples/bottleneck_debugging.py
"""

from repro import AnalyticsContext, hdd_cluster
from repro.metrics import render_timeline
from repro.metrics.events import CPU, DISK, NETWORK
from repro.model import analyze_bottlenecks, hardware_profile, profile_job
from repro.workloads.bigdata import BdbScale, generate_bdb_tables, run_query
from repro.workloads.scaling import scaled_memory_overrides

FRACTION = 0.1
QUERIES = ("1c", "2c", "3b")


def main():
    scale = BdbScale(fraction=FRACTION)
    cluster = hdd_cluster(num_machines=5,
                          **scaled_memory_overrides(FRACTION))
    generate_bdb_tables(cluster, scale)
    ctx = AnalyticsContext(cluster, engine="monospark")

    for query in QUERIES:
        result = run_query(ctx, query, scale)
        profiles = profile_job(ctx.metrics, result.job_id)
        report = analyze_bottlenecks(profiles, result.duration,
                                     hardware_profile(cluster))
        print(f"query {query}: {result.duration:.1f}s; "
              f"bottleneck = {report.job_bottleneck}")
        for resource in (DISK, NETWORK, CPU):
            runtime = report.predicted_runtime_without(resource)
            gain = report.speedup_fraction(resource)
            print(f"   with infinitely fast {resource:8s}: "
                  f"{runtime:6.1f}s  (saves {gain * 100:4.1f}%)")
        for stage_id, bottleneck in sorted(
                report.stage_bottlenecks.items()):
            print(f"   stage {stage_id} bottleneck: {bottleneck}")
        print()

    # The same self-reports render a per-machine execution timeline.
    print("execution timeline of the last query (machine 0):")
    print(render_timeline(ctx.metrics, ctx.last_result.job_id,
                          machine_id=0, width=72))
    print()

    # Contention is visible as queue lengths (§3.1): peek at a worker.
    worker = ctx.engine.workers[0]
    print("peak contention on machine 0 (max monotasks queued):")
    print(f"   cpu:     {worker.compute_scheduler.max_queue_length}")
    for index, scheduler in enumerate(worker.disk_schedulers):
        print(f"   disk{index}:   {scheduler.max_queue_length}")
    print(f"   network: {worker.network_scheduler.max_queue_length}")


if __name__ == "__main__":
    main()
